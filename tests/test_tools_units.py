"""Unit tests for toolkit helpers that need no full cluster."""

import pytest

from repro.core.view import View
from repro.msg import make_group_address, make_process_address
from repro.tools.coordinator import pick_coordinator
from repro.tools.transfer import carve

GID = make_group_address(0, 1)
P_AT_0 = make_process_address(0, 0, 1)
P_AT_1 = make_process_address(1, 0, 1)
P_AT_2 = make_process_address(2, 0, 1)


class TestPickCoordinator:
    def view(self, *members):
        return View(gid=GID, view_id=1, members=tuple(members))

    def test_prefers_participant_at_caller_site(self):
        """§6: 'picks the coordinator to reside at the same site as the
        caller if possible (to minimize latency)'."""
        view = self.view(P_AT_0, P_AT_1, P_AT_2)
        plist = [P_AT_0, P_AT_1, P_AT_2]
        assert pick_coordinator(plist, view, caller_site=1) == P_AT_1

    def test_circular_scan_otherwise(self):
        """§6: 'the caller's site-id is used as a random index into
        plist and the first operational process, in a circular scan,
        is chosen'."""
        view = self.view(P_AT_0, P_AT_1)
        plist = [P_AT_0, P_AT_1]
        # Caller at site 5: no participant there; 5 % 2 = 1.
        assert pick_coordinator(plist, view, caller_site=5) == P_AT_1

    def test_dead_participants_skipped(self):
        view = self.view(P_AT_0, P_AT_2)  # P_AT_1 not in the view
        plist = [P_AT_0, P_AT_1, P_AT_2]
        assert pick_coordinator(plist, view, caller_site=1) in (P_AT_0, P_AT_2)

    def test_deterministic_across_participants(self):
        """All participants must compute the same coordinator."""
        view = self.view(P_AT_0, P_AT_1, P_AT_2)
        plist = [P_AT_2, P_AT_0, P_AT_1]  # arbitrary but shared order
        picks = {pick_coordinator(plist, view, caller_site=7)
                 for _ in range(5)}
        assert len(picks) == 1

    def test_empty_candidates_returns_none(self):
        view = self.view(P_AT_0)
        assert pick_coordinator([P_AT_1], view, caller_site=0) is None


class TestCarve:
    def test_small_blob_one_block(self):
        assert carve(b"abc", 10) == [b"abc"]

    def test_empty_blob_one_empty_block(self):
        assert carve(b"", 10) == [b""]

    def test_blocks_reassemble(self):
        blob = bytes(range(256)) * 10
        assert b"".join(carve(blob, 100)) == blob

    def test_block_sizes_bounded(self):
        blocks = carve(b"x" * 1050, 100)
        assert all(len(b) <= 100 for b in blocks)
        assert len(blocks) == 11
