"""Unit tests for stable storage semantics and the fault model.

The WAL layer (``repro.core.wal``) stakes its correctness on a handful
of :class:`StableStore` properties: persistence across incarnations,
append ordering, front-truncation, and — with a fault model — the exact
shape of what a crash may do to unsynced writes.  These tests pin those
properties down in isolation.
"""

import pytest

from repro.core.wal import frame_record, unframe_record
from repro.runtime import Cluster
from repro.runtime.stable import StableStore, StorageFaults
from repro.sim import Simulator


def make_store(faults=None, site_id=0):
    sim = Simulator()
    return sim, StableStore(sim, site_id, faults=faults)


class TestBlobSemantics:
    def test_write_commits_after_latency(self):
        sim, store = make_store()
        promise = store.write("k", b"v1")
        assert store.read("k") is None, "write visible before disk latency"
        sim.run(until=1.0)
        assert promise.value is None
        assert store.read("k") == b"v1"

    def test_last_write_wins(self):
        sim, store = make_store()
        store.write("k", b"old")
        store.write("k", b"new")
        sim.run(until=1.0)
        assert store.read("k") == b"new"

    def test_keys_filter_by_prefix(self):
        sim, store = make_store()
        store.write("a/1", b"")
        store.write("a/2", b"")
        store.write("b/1", b"")
        sim.run(until=1.0)
        assert store.keys("a/") == ["a/1", "a/2"]
        store.delete("a/1")
        assert store.keys("a/") == ["a/2"]


class TestLogSemantics:
    def test_append_preserves_order(self):
        sim, store = make_store()
        for i in range(5):
            store.append("log", bytes([i]))
        sim.run(until=1.0)
        assert store.read_log("log") == [bytes([i]) for i in range(5)]
        assert store.log_length("log") == 5

    def test_truncate_drops_the_front(self):
        sim, store = make_store()
        for i in range(5):
            store.append("log", bytes([i]))
        sim.run(until=1.0)
        store.truncate_log("log", 3)
        assert store.read_log("log") == [bytes([3]), bytes([4])]

    def test_replace_log_rewrites_or_removes(self):
        sim, store = make_store()
        store.append("log", b"x")
        sim.run(until=1.0)
        store.replace_log("log", [b"a", b"b"])
        assert store.read_log("log") == [b"a", b"b"]
        store.replace_log("log", [])
        assert store.log_names() == []


class TestCrashSemantics:
    def test_survives_site_restart(self):
        """The store belongs to the site, not the incarnation (§2.2)."""
        sim = Simulator()
        cluster = Cluster(sim, n_sites=1)
        cluster.boot_all()
        site = cluster.site(0)
        site.stable.write("reg", b"payload")
        site.stable.append("log", b"r0")
        sim.run(until=1.0)
        site.crash()
        site.boot()
        assert site.stable.read("reg") == b"payload"
        assert site.stable.read_log("log") == [b"r0"]

    def test_legacy_model_commits_inflight_writes(self):
        """``faults=None``: a write accepted before the crash still
        lands — the historical model existing tools rely on."""
        sim = Simulator()
        cluster = Cluster(sim, n_sites=1)
        cluster.boot_all()
        site = cluster.site(0)
        site.stable.write("k", b"v")
        site.stable.append("log", b"r")
        site.crash()  # before the 20ms disk latency elapsed
        sim.run(until=1.0)
        assert site.stable.read("k") == b"v"
        assert site.stable.read_log("log") == [b"r"]

    def test_lose_unsynced_drops_inflight_writes(self):
        sim = Simulator()
        cluster = Cluster(sim, n_sites=1,
                          storage_faults=StorageFaults(lose_unsynced=True))
        cluster.boot_all()
        site = cluster.site(0)
        site.stable.write("old", b"v")
        sim.run(until=1.0)  # committed
        site.stable.write("new", b"v")
        site.stable.append("log", b"r")
        site.crash()
        sim.run(until=1.0)
        assert site.stable.read("old") == b"v"
        assert site.stable.read("new") is None
        assert site.stable.read_log("log") == []
        assert sim.trace.value("stable.lost_unsynced") == 2

    def test_torn_tail_leaves_checksummed_prefix(self):
        """With ``torn_tail_prob=1`` the oldest in-flight append lands
        as a strict byte-prefix, which the WAL framing must reject."""
        sim, store = make_store(
            faults=StorageFaults(torn_tail_prob=1.0, seed=3))
        framed = frame_record(b"hello world, this is a record body")
        store.append("log", framed)
        store.note_crash()
        sim.run(until=1.0)
        tail = store.read_log("log")
        assert len(tail) == 1
        assert 0 < len(tail[0]) < len(framed)
        assert framed.startswith(tail[0])
        assert unframe_record(tail[0]) is None
        assert sim.trace.value("stable.torn_tails") == 1

    def test_fsync_latency_slows_commits(self):
        sim, store = make_store(
            faults=StorageFaults(lose_unsynced=False, fsync_latency=0.5))
        store.write("k", b"v")
        sim.run(until=0.1)
        assert store.read("k") is None
        sim.run(until=1.0)
        assert store.read("k") == b"v"

    def test_fault_schedule_is_deterministic(self):
        def run(seed):
            sim, store = make_store(
                faults=StorageFaults(torn_tail_prob=0.5, seed=seed))
            cuts = []
            for i in range(20):
                store.append("log", frame_record(b"x" * 40 + bytes([i])))
                store.note_crash()
            sim.run(until=5.0)
            return [len(r) for r in store.read_log("log")]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestWalFraming:
    def test_roundtrip(self):
        body = b"\x01payload"
        assert unframe_record(frame_record(body)) == body

    @pytest.mark.parametrize("cut", [1, 3, 7, -1])
    def test_any_truncation_detected(self, cut):
        framed = frame_record(b"0123456789abcdef")
        assert unframe_record(framed[:cut]) is None

    def test_corruption_detected(self):
        framed = bytearray(frame_record(b"0123456789abcdef"))
        framed[5] ^= 0xFF
        assert unframe_record(bytes(framed)) is None
