"""Graceful kernel shutdown: every timer disarmed, even mid-flush.

``ProtocolsProcess.shutdown()`` (run via the site crash hook) must
cancel everything the kernel armed — heartbeats, the stability tick,
batch-coalescing and sequencer stamp timers, flush grace/okb timers and
join retry/transfer timers — and close outbound state-transfer streams.
A leaked periodic timer keeps re-arming forever, so the observable
contract is simple: after every site is down, the event heap drains and
stays empty.
"""

from __future__ import annotations

from repro import IsisCluster, IsisConfig

SINK = 9


def _armed_timers(sim):
    return [t for t in sim._heap if not t.cancelled]


def _deploy_three(system):
    """3-site group; returns (gid, member0's process and isis handle)."""
    gid_box = {}
    p0, i0 = system.spawn(0, "m0")

    def create():
        gid_box["gid"] = yield i0.pg_create("shut")

    p0.spawn(create(), "create")
    system.run_for(5.0)
    for sid in (1, 2):
        proc, isis = system.spawn(sid, f"m{sid}")

        def join(isis=isis):
            gid = yield isis.pg_lookup("shut")
            yield isis.pg_join(gid)

        proc.spawn(join(), f"join{sid}")
        system.run_for(25.0)
    return gid_box["gid"], p0, i0


def test_shutdown_mid_flush_cancels_every_timer():
    # Retry periods far beyond the settle window below: a join retry
    # timer that shutdown fails to cancel is still armed at assert time.
    system = IsisCluster(
        n_sites=3, seed=11,
        isis_config=IsisConfig(batch_window=0.05, abcast_mode="sequencer",
                               join_retry=30.0, transfer_retry=30.0))
    gid, p0, i0 = _deploy_three(system)
    p0.bind(SINK, lambda msg: None)

    # Kill a member site, then wait until a survivor is actually
    # mid-flush (wedged, or coordinating a flush round).
    system.site(2).crash()
    kernels = [system.kernel(0), system.kernel(1)]

    def mid_flush() -> bool:
        return any(
            engine.wedged or engine._active is not None
            for kernel in kernels for engine in kernel.engines.values())

    deadline = system.now + 120.0
    while system.now < deadline and not mid_flush():
        system.run_for(0.05)
    assert mid_flush(), "flush never started after the crash"

    # Mid-flush, pile on everything that arms kernel timers: multicasts
    # still in their batch windows, and — after killing the group's
    # contact site — a join whose request goes unanswered, leaving its
    # 30 s retry timer armed in ``_joins``.
    for i in range(4):
        i0.cbcast(gid, SINK, nwant=0, i=i)
        i0.abcast(gid, SINK, nwant=0, i=i)
    system.site(0).crash()  # the group's coordinator/contact site
    p_late, i_late = system.spawn(1, "late")

    def late_join():
        yield i_late.pg_join(gid)

    p_late.spawn(late_join(), "latejoin")
    deadline = system.now + 5.0
    while system.now < deadline and not system.kernel(1)._joins:
        system.run_for(0.01)
    assert system.kernel(1)._joins, "join not in flight"

    system.site(1).crash()  # crash hook runs kernel.shutdown()

    # One-shot fire-and-forget timers (intra-site delivery hops) may
    # still be armed; they fire once and vanish.  Anything periodic that
    # survived shutdown would keep re-arming and fail this.
    system.run_for(5.0)
    leaked = _armed_timers(system.sim)
    assert leaked == [], f"timers left armed after shutdown: {leaked!r}"


def test_shutdown_rejects_batched_and_joining_promises():
    system = IsisCluster(
        n_sites=3, seed=13,
        isis_config=IsisConfig(batch_window=0.05))
    gid, p0, i0 = _deploy_three(system)
    p0.bind(SINK, lambda msg: None)

    # A multicast whose envelope is still in the batch buffer, and a
    # fresh join, both pending when the site dies: their promises must
    # be rejected (not left dangling) by the shutdown path.
    mcast = i0.cbcast(gid, SINK, nwant=1, i=99)
    p_late, i_late = system.spawn(1, "late2")
    join_state = {}

    def late_join():
        try:
            lookup = yield i_late.pg_lookup("shut")
            yield i_late.pg_join(lookup)
            join_state["ok"] = True
        except Exception as err:  # noqa: BLE001 - outcome under test
            join_state["err"] = err

    p_late.spawn(late_join(), "latejoin2")
    system.site(0).crash()
    system.site(1).crash()
    system.run_for(5.0)
    assert mcast.done, "batched multicast promise left dangling"
    assert mcast.rejected
    assert "ok" not in join_state, "join resolved on a dead kernel"
