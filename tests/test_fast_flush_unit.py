"""Unit tests for the fast view-change engine (``IsisConfig.fast_flush``).

Covers the pieces the differential property sweep cannot pin down
individually: the single-round pre-report path, the takeover fallback
to full reports when a coordinator dies mid-flush, delta report codecs,
delivered-finals pruning, and the streaming join state transfer
(including a joiner dying mid-stream).
"""

import pytest

from repro import IsisCluster, IsisConfig
from repro.msg import Message
from repro.msg.fields import (
    apply_have_diff,
    decode_have_vector,
    encode_have_vector,
    exact_diff_have_vector,
)
from repro.tools import register_raw_state

ENTRY = 16


def build_group(system, sites, name="ff"):
    members = []
    for site in sites:
        proc, isis = system.spawn(site, f"m{site}")
        proc.bind(ENTRY, lambda msg: None)
        members.append((proc, isis))

    def create():
        yield members[0][1].pg_create(name)

    members[0][0].spawn(create(), "create")
    system.run_for(3.0)
    for i in range(1, len(sites)):
        def join(isis=members[i][1]):
            gid = yield isis.pg_lookup(name)
            yield isis.pg_join(gid)

        members[i][0].spawn(join(), f"j{i}")
        system.run_for(15.0)
    return members


def group_engine(system, site, name="ff"):
    for engine in system.kernel(site).engines.values():
        if engine.installed and engine.view is not None:
            return engine
    raise AssertionError(f"no installed engine at site {site}")


class TestExactDiffCodec:
    def test_roundtrip_both_directions(self):
        base = {0: 5, 1: 3, 2: 7}
        cases = [
            {0: 5, 1: 3, 2: 7},          # equal -> empty diff
            {0: 6, 1: 3, 2: 7, 3: 1},    # ahead + new origin
            {0: 5, 1: 2},                # behind + origin missing
            {},                          # everything missing
        ]
        for cur in cases:
            diff = exact_diff_have_vector(base, cur)
            assert apply_have_diff(base, diff) == {
                k: v for k, v in cur.items() if v > 0}
        assert exact_diff_have_vector(base, dict(base)) == {}

    def test_diff_travels_through_wire_codec(self):
        base = {0: 9, 4: 2}
        cur = {0: 11, 2: 5}
        diff = exact_diff_have_vector(base, cur)
        decoded = decode_have_vector(encode_have_vector(diff))
        assert apply_have_diff(base, decoded) == cur


class TestSingleRoundFastPath:
    def test_site_crash_commits_without_begin_round(self):
        system = IsisCluster(n_sites=3, seed=41)
        build_group(system, [0, 1, 2])
        system.run_for(5.0)
        trace = system.sim.trace
        before = trace.snapshot("flush.")
        system.crash_site(2)
        system.run_for(15.0)
        delta = trace.delta(before, "flush.")
        assert delta.get("flush.prereports_sent", 0) >= 1
        assert delta.get("flush.fast_path", 0) >= 1
        assert delta.get("flush.grace_begins", 0) == 0
        for site in (0, 1):
            view = group_engine(system, site).view
            assert len(view.members) == 2
            assert not group_engine(system, site).wedged

    def test_leave_flush_uses_explicit_begin_with_base(self):
        """Reason-driven flushes (no site-view trigger) keep the begin
        round but carry the base union for delta reports."""
        system = IsisCluster(n_sites=3, seed=42)
        members = build_group(system, [0, 1, 2])
        system.run_for(5.0)
        trace = system.sim.trace
        before = trace.snapshot("flush.")

        def leave():
            gid = yield members[2][1].pg_lookup("ff")
            yield members[2][1].pg_leave(gid)

        members[2][0].spawn(leave(), "leave")
        system.run_for(10.0)
        delta = trace.delta(before, "flush.")
        assert delta.get("flush.runs", 0) >= 1
        # No site died, so no pre-reports; begins were sent instead.
        assert delta.get("flush.prereports_sent", 0) == 0
        stats = system.kernel(0).stats()
        assert stats["flush.fast_path_misses"] >= 1
        assert len(group_engine(system, 0).view.members) == 2

    def test_wedged_seconds_accumulate(self):
        system = IsisCluster(n_sites=3, seed=43)
        build_group(system, [0, 1, 2])
        system.run_for(5.0)
        system.crash_site(2)
        system.run_for(15.0)
        for site in (0, 1):
            stats = system.kernel(site).stats()
            assert stats["flush.wedged_seconds"] > 0.0
        # Only the coordinator site counts flush rounds.
        assert system.kernel(0).stats()["flush.rounds"] >= 1


class TestRefillUnderPreReports:
    def test_crash_under_inflight_traffic_completes_flush(self):
        """Regression: a participant wedged under its pre-report fid
        (attempt 0) must adopt the coordinator's higher-fid
        ``g.fl.expect`` during the refill phase, or the flush stalls
        wedged forever (the pre-report snapshot can be stale, so the
        coordinator may schedule refills for a site that has since
        caught up)."""
        system = IsisCluster(n_sites=4, seed=3)
        members = build_group(system, [0, 1, 2, 3])
        for idx in range(4):
            def gen(isis=members[idx][1], idx=idx):
                from repro.sim.tasks import sleep
                gid = yield isis.pg_lookup("ff")
                for i in range(12):
                    yield isis.bcast(gid, ENTRY,
                                     kind="abcast" if i % 2 else "cbcast",
                                     tag=f"{idx}:{i}")
                    yield sleep(system.sim, 0.15)

            members[idx][0].spawn(gen(), f"t{idx}")
        system.run_for(0.6)
        # A short split lets one side race ahead, then a crash right
        # after the heal wedges the group with stale pre-reports.
        system.cluster.lan.partition([[0, 1], [2, 3]])
        system.run_for(0.9)
        system.cluster.lan.heal()
        system.run_for(1.0)
        system.crash_site(3)
        system.run_for(30.0)
        views = set()
        for site in (0, 1, 2):
            engine = group_engine(system, site)
            assert not engine.wedged, f"site {site} stuck wedged"
            views.add(tuple(str(m) for m in engine.view.members))
        assert len(views) == 1
        assert len(next(iter(views))) == 3


class TestCoordinatorFailure:
    def test_takeover_falls_back_to_full_reports(self):
        """A participant wedged under a dead coordinator's explicit
        round must, on becoming coordinator, re-solicit full reports
        rather than trust pre-reports addressed elsewhere."""
        system = IsisCluster(n_sites=3, seed=44)
        build_group(system, [0, 1, 2])
        system.run_for(5.0)
        engine1 = group_engine(system, 1)
        gid = engine1.gid
        target = engine1.view.view_id + 1
        # Fabricate a begin from the (about to die) coordinator site 0:
        # participants wedge under fid (target, attempt 1, site 0).
        begin = Message(_proto="g.fl.begin", gid=gid, fid=[target, 1, 0])
        for site in (1, 2):
            system.kernel(site)._dispatch(0, Message.decode(begin.encode()))
        assert group_engine(system, 1).wedged
        system.crash_site(0)
        system.run_for(20.0)
        trace = system.sim.trace
        assert trace.value("flush.takeover_full") >= 1
        for site in (1, 2):
            engine = group_engine(system, site)
            assert not engine.wedged
            assert len(engine.view.members) == 2
            assert engine.view.members[0].site == 1  # new coordinator

    def test_lower_fid_from_acting_coordinator_accepted(self):
        """The successor coordinator's attempt counter restarts, so its
        begin can carry a *lower* fid than the dead coordinator's —
        participants must still serve it."""
        system = IsisCluster(n_sites=3, seed=45)
        build_group(system, [0, 1, 2])
        system.run_for(5.0)
        engine2 = group_engine(system, 2)
        gid = engine2.gid
        target = engine2.view.view_id + 1
        # Wedge site 2 under a high-attempt begin from site 0, then kill
        # site 0; site 1 becomes acting coordinator with attempt 1.
        begin = Message(_proto="g.fl.begin", gid=gid, fid=[target, 9, 0])
        system.kernel(2)._dispatch(0, Message.decode(begin.encode()))
        assert group_engine(system, 2)._participant_fid == (target, 9, 0)
        system.crash_site(0)
        system.run_for(20.0)
        engine = group_engine(system, 2)
        assert not engine.wedged
        assert len(engine.view.members) == 2


class TestDeliveredFinalsPruning:
    def _run(self, fast):
        system = IsisCluster(
            n_sites=3, seed=46, isis_config=IsisConfig(fast_flush=fast))
        members = build_group(system, [0, 1, 2])

        def blast():
            gid = yield members[0][1].pg_lookup("ff")
            for i in range(30):
                yield members[0][1].abcast(gid, ENTRY, tag=i)

        members[0][0].spawn(blast(), "blast")
        system.run_for(12.0)  # traffic + two stability ticks
        return system

    def test_fast_mode_prunes_delivered_finals(self):
        system = self._run(fast=True)
        total = sum(len(group_engine(system, s)._delivered_finals)
                    for s in range(3))
        assert total <= 6, f"{total} delivered finals left unpruned"
        assert system.sim.trace.value("flush.finals_pruned") > 0

    def test_legacy_mode_keeps_full_history(self):
        system = self._run(fast=False)
        for site in range(3):
            assert len(group_engine(system, site)._delivered_finals) == 30
        assert system.sim.trace.value("flush.finals_pruned") == 0


class TestStreamingJoinTransfer:
    def _deploy_source(self, system, blob):
        proc, isis = system.spawn(0, "src")
        proc.bind(ENTRY, lambda msg: None)
        register_raw_state(isis, "blob", lambda: blob, lambda b: None)

        def create():
            yield isis.pg_create("big")

        proc.spawn(create(), "create")
        system.run_for(3.0)
        return proc, isis

    def test_joiner_death_mid_stream_aborts_cleanly(self):
        blob = bytes(range(256)) * 1536  # ~384 KB -> several chunks
        system = IsisCluster(n_sites=2, seed=47)
        self._deploy_source(system, blob)
        joiner, joiner_isis = system.spawn(1, "joiner")
        got = {}
        register_raw_state(joiner_isis, "blob", lambda: b"",
                           lambda b: got.update(blob=b))

        def join():
            gid = yield joiner_isis.pg_lookup("big")
            yield joiner_isis.pg_join(gid)

        joiner.spawn(join(), "join")
        trace = system.sim.trace
        for _ in range(400):
            system.run_for(0.05)
            # Wait for the stream to begin AND the welcome to land at
            # the joiner (so its kernel watches the member's death).
            if (trace.value("state_transfer.chunks") >= 1
                    and system.kernel(1)._watched_procs):
                break
        assert trace.value("state_transfer.chunks") >= 1, "stream never began"
        assert trace.value("state_transfer.chunks") < 6, "stream finished"
        joiner.kill()
        system.run_for(20.0)
        assert trace.value("state_transfer.streams_aborted") >= 1
        assert "blob" not in got  # never finished
        # Source side: no dangling stream; joiner side: gated traffic
        # and join bookkeeping dropped cleanly.
        assert system.kernel(0).stats()["state_transfer.streams_active"] == 0
        assert system.kernel(1)._awaiting_state == {}
        assert system.kernel(1)._joins == {}
        # Group shrank back to the single original member.
        assert len(group_engine(system, 0, "big").view.members) == 1

    def test_concurrent_joiners_share_one_flush_and_encode(self):
        """Joins queued behind an in-progress flush batch into one
        successor flush; its joiners share a single snapshot encode."""
        blob = bytes(range(256)) * 1024  # 256 KB
        system = IsisCluster(n_sites=4, seed=48)
        encodes = {"n": 0}
        members = build_group(system, [0, 1], name="big")

        def snapshot():
            encodes["n"] += 1
            return blob

        register_raw_state(members[0][1], "blob", snapshot, lambda b: None)
        system.run_for(2.0)
        got = {}
        joiners = {}
        for site in (2, 3):
            jproc, jisis = system.spawn(site, f"j{site}")
            register_raw_state(jisis, "blob", lambda: b"",
                               lambda b, s=site: got.update({s: b}))
            joiners[site] = (jproc, jisis)
            # Resolve the name first so the join requests fire together.

            def lookup(jisis=jisis, site=site):
                joiners[site] = joiners[site] + (
                    (yield jisis.pg_lookup("big")),)

            jproc.spawn(lookup(), f"lk{site}")
        system.run_for(3.0)
        before = system.sim.trace.value("flush.runs")

        # A GBCAST flush wedges the group; both join requests arrive
        # while it runs and batch into one successor flush.
        def gb():
            gid = yield members[0][1].pg_lookup("big")
            yield members[0][1].gbcast(gid, ENTRY, tag="wedge")

        members[0][0].spawn(gb(), "gb")
        for site in (2, 3):
            jproc, jisis, gid = joiners[site]

            def join(jisis=jisis, gid=gid):
                yield jisis.pg_join(gid)

            jproc.spawn(join(), f"join{site}")
        system.run_for(40.0)
        assert got == {2: blob, 3: blob}
        assert len(group_engine(system, 0, "big").view.members) == 4
        flushes = system.sim.trace.value("flush.runs") - before
        assert flushes == 2, f"expected gbcast + one batched join flush, " \
                             f"got {flushes}"
        # One shared snapshot encode for both joiners, two streams.
        assert encodes["n"] == 1
        assert system.sim.trace.value("state_transfer.streams") == 2
