"""Unit tests for the site-view membership agent (repro.fd.siteview).

The agents are wired to each other through a tiny in-memory message bus
with per-hop delay, isolating the protocol from the full transport stack.
"""

import pytest

from repro.fd import SiteView, SiteViewAgent, SiteViewConfig
from repro.msg import Message
from repro.sim import Simulator


class Bus:
    """Direct agent-to-agent delivery with a fixed delay."""

    def __init__(self, sim, delay=0.01):
        self.sim = sim
        self.delay = delay
        self.agents = {}
        self.cut = set()  # (src, dst) pairs that drop messages

    def sender_for(self, src):
        def send(dst, msg):
            if (src, dst) in self.cut:
                return
            agent = self.agents.get(dst)
            if agent is not None:
                data = msg.encode()  # exercise codec fidelity
                self.sim.call_after(
                    self.delay, agent.handle, src, Message.decode(data))
        return send


def make_agents(sim, n=3, config=None):
    bus = Bus(sim)
    views = {i: [] for i in range(n)}
    destroyed = []
    agents = {}
    for i in range(n):
        agents[i] = SiteViewAgent(
            sim, i, incarnation=0, all_sites=list(range(n)),
            send=bus.sender_for(i),
            on_view=lambda v, dep, joi, i=i: views[i].append((v, dep, joi)),
            self_destruct=lambda i=i: destroyed.append(i),
            config=config or SiteViewConfig(),
        )
        bus.agents[i] = agents[i]
    return bus, agents, views, destroyed


def genesis_all(agents):
    members = [(i, 0) for i in agents]
    for agent in agents.values():
        agent.genesis(members)


class TestGenesisAndQueries:
    def test_genesis_installs_view_one(self):
        sim = Simulator()
        _, agents, views, _ = make_agents(sim)
        genesis_all(agents)
        for i in agents:
            assert agents[i].view.view_id == 1
            assert agents[i].view.sites() == (0, 1, 2)
            assert agents[i].in_view

    def test_oldest_site_is_coordinator(self):
        sim = Simulator()
        _, agents, _, _ = make_agents(sim)
        genesis_all(agents)
        assert agents[0].is_coordinator()
        assert not agents[1].is_coordinator()


class TestRemoval:
    def test_coordinator_removes_suspected_site(self):
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim)
        genesis_all(agents)
        agents[0].suspect(2)
        sim.run(until=5.0)
        for i in (0, 1):
            assert agents[i].view.sites() == (0, 1)
            assert agents[i].view.view_id == 2

    def test_member_forwards_suspicion_to_coordinator(self):
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim)
        genesis_all(agents)
        agents[1].suspect(2)  # site 1 is not the coordinator
        sim.run(until=5.0)
        assert agents[0].view.sites() == (0, 1)

    def test_next_oldest_takes_over_when_coordinator_dies(self):
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim)
        genesis_all(agents)
        # Site 1 believes 0 is dead (and only site 1 acts).
        agents[1].suspect(0)
        sim.run(until=10.0)
        assert agents[1].view.sites() == (1, 2)
        assert agents[1].is_coordinator()

    def test_excluded_live_site_self_destructs_on_commit(self):
        sim = Simulator()
        bus, agents, views, destroyed = make_agents(sim)
        genesis_all(agents)
        agents[0].suspect(2)
        sim.run(until=5.0)
        # Agent 2 is alive and receives the commit excluding it.
        assert destroyed == [2]

    def test_batched_suspicions_one_view_change(self):
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim, n=4)
        genesis_all(agents)
        agents[0].suspect(2)
        agents[0].suspect(3)
        sim.run(until=5.0)
        assert agents[0].view.sites() == (0, 1)
        # One batched change, not two: view id went 1 -> 2 (or at most 3).
        assert agents[0].view.view_id <= 3

    def test_staggered_suspicions_coalesce_within_settle(self):
        """Correlated deaths arriving a few ms apart merge into ONE
        proposed view (the settle window), not serial view changes."""
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim, n=4)
        genesis_all(agents)
        agents[0].suspect(2)
        sim.call_after(0.02, agents[0].suspect, 3)  # inside the window
        sim.run(until=5.0)
        assert agents[0].view.sites() == (0, 1)
        assert agents[0].view.view_id == 2  # exactly one view change
        assert sim.trace.value("sv.batched_removals") >= 1

    def test_settle_zero_restores_immediate_rounds(self):
        sim = Simulator()
        config = SiteViewConfig(suspicion_settle=0.0)
        bus, agents, views, _ = make_agents(sim, n=4, config=config)
        genesis_all(agents)
        agents[0].suspect(2)
        sim.call_after(0.02, agents[0].suspect, 3)
        sim.run(until=5.0)
        # Two serial view changes (the original behavior).
        assert agents[0].view.sites() == (0, 1)
        assert agents[0].view.view_id == 3


class TestQuorum:
    def test_minority_stalls_instead_of_forming_view(self):
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim, n=3)
        genesis_all(agents)
        # Site 2 is partitioned away and suspects both others.
        bus.cut = {(2, 0), (0, 2), (2, 1), (1, 2)}
        agents[2].suspect(0)
        agents[2].suspect(1)
        sim.run(until=20.0)
        assert agents[2].view.view_id == 1  # never installed a new view
        assert sim.trace.value("sv.stalls") >= 1

    def test_half_of_two_may_proceed(self):
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim, n=2)
        genesis_all(agents)
        agents[0].suspect(1)
        sim.run(until=5.0)
        assert agents[0].view.sites() == (0,)


class TestJoin:
    def test_new_site_admitted_via_join_loop(self):
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim, n=3)
        # Genesis with only sites 0 and 1.
        for i in (0, 1):
            agents[i].genesis([(0, 0), (1, 0)])
        agents[2].request_join()
        sim.run(until=10.0)
        assert agents[0].view.sites() == (0, 1, 2)
        assert agents[2].in_view
        # Joiner is youngest: appended at the end.
        assert agents[0].view.members[-1] == (2, 0)

    def test_duplicate_join_requests_idempotent(self):
        sim = Simulator()
        bus, agents, views, _ = make_agents(sim, n=2)
        agents[0].genesis([(0, 0)])
        agents[1].request_join()
        sim.run(until=20.0)
        final = agents[0].view
        assert final.sites() == (0, 1)
        # Repeated join-loop requests did not create repeated views.
        assert final.view_id == 2

    def test_lone_restarter_bootstraps_singleton(self):
        sim = Simulator()
        config = SiteViewConfig(bootstrap_timeout=3.0)
        bus, agents, views, _ = make_agents(sim, n=2, config=config)
        # Nobody has a view; site 0 starts its join loop alone.
        agents[0].request_join()
        sim.run(until=10.0)
        assert agents[0].view is not None
        assert agents[0].view.sites() == (0,)

    def test_higher_numbered_site_defers_to_lower(self):
        sim = Simulator()
        config = SiteViewConfig(bootstrap_timeout=3.0)
        bus, agents, views, _ = make_agents(sim, n=2, config=config)
        agents[0].request_join()
        agents[1].request_join()
        sim.run(until=20.0)
        # Site 0 bootstraps; site 1 joins it.
        assert agents[0].view.sites() == (0, 1)
        assert agents[1].view.sites() == (0, 1)
        assert agents[0].view.members[0] == (0, 0)


class TestSiteViewValue:
    def test_incarnation_lookup(self):
        view = SiteView(view_id=3, members=((0, 1), (2, 5)))
        assert view.incarnation_of(2) == 5
        assert view.incarnation_of(9) is None
        assert view.contains_site(0)
        assert view.coordinator_site() == 0
