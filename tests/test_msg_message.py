"""Unit tests for the field-structured message codec (repro.msg.message)."""

import pytest

from repro.errors import CodecError
from repro.msg import (
    F_SENDER,
    Message,
    make_group_address,
    make_process_address,
    system_copy,
)


def test_set_get_delete_fields():
    msg = Message()
    msg["query"] = "color=red"
    assert msg["query"] == "color=red"
    assert "query" in msg
    del msg["query"]
    assert "query" not in msg
    with pytest.raises(KeyError):
        _ = msg["query"]


def test_constructor_kwargs():
    msg = Message(a=1, b="two")
    assert msg["a"] == 1 and msg["b"] == "two"


def test_get_with_default():
    msg = Message()
    assert msg.get("missing", 42) == 42


def test_every_field_type_roundtrips():
    addr = make_process_address(1, 2, 3, entry=4)
    inner = Message(deep="value")
    msg = Message()
    msg["none"] = None
    msg["bool"] = True
    msg["int"] = -(2**40)
    msg["float"] = 3.14159
    msg["str"] = "héllo wörld"
    msg["bytes"] = b"\x00\x01\xff"
    msg["addr"] = addr
    msg["nested"] = inner
    msg["list"] = [1, "two", None, addr, [3.0, False]]
    msg["dict"] = {"k1": 1, "k2": [b"x"], "k3": {"n": None}}
    decoded = Message.decode(msg.encode())
    assert decoded["none"] is None
    assert decoded["bool"] is True
    assert decoded["int"] == -(2**40)
    assert decoded["float"] == pytest.approx(3.14159)
    assert decoded["str"] == "héllo wörld"
    assert decoded["bytes"] == b"\x00\x01\xff"
    assert decoded["addr"] == addr
    assert decoded["nested"]["deep"] == "value"
    assert decoded["list"] == [1, "two", None, addr, [3.0, False]]
    assert decoded["dict"] == {"k1": 1, "k2": [b"x"], "k3": {"n": None}}


def test_tuple_decodes_as_list():
    msg = Message(t=(1, 2, 3))
    assert Message.decode(msg.encode())["t"] == [1, 2, 3]


def test_huge_int_rejected():
    msg = Message(n=2**70)
    with pytest.raises(CodecError):
        msg.encode()


def test_unencodable_type_rejected():
    msg = Message(obj=object())
    with pytest.raises(CodecError):
        msg.encode()


def test_non_string_dict_key_rejected():
    msg = Message(d={1: "x"})
    with pytest.raises(CodecError):
        msg.encode()


def test_decode_rejects_garbage():
    with pytest.raises(CodecError):
        Message.decode(b"\x00\x01\x02")
    with pytest.raises(CodecError):
        Message.decode(b"")


def test_decode_rejects_truncation():
    raw = Message(payload=b"x" * 100).encode()
    with pytest.raises(CodecError):
        Message.decode(raw[:-5])


def test_decode_rejects_trailing_bytes():
    raw = Message(a=1).encode()
    with pytest.raises(CodecError):
        Message.decode(raw + b"\x00")


def test_size_bytes_tracks_mutation():
    msg = Message(a=1)
    size_before = msg.size_bytes
    msg["b"] = "x" * 100
    assert msg.size_bytes > size_before + 100


def test_copy_is_independent():
    msg = Message(a=1)
    dup = msg.copy()
    dup["b"] = 2
    assert "b" not in msg


def test_system_copy_strips_system_fields():
    msg = Message(payload="keep")
    msg[F_SENDER] = make_process_address(1, 0, 1)
    stripped = system_copy(msg)
    assert "payload" in stripped
    assert F_SENDER not in stripped


def test_system_accessors():
    gid = make_group_address(1, 1)
    sender = make_process_address(2, 0, 7)
    msg = Message()
    msg["_sender"] = sender
    msg["_dests"] = [gid]
    msg["_session"] = 99
    msg["_entry"] = 5
    msg["_group"] = gid
    msg["_view_id"] = 3
    assert msg.sender == sender
    assert msg.dests == [gid]
    assert msg.session == 99
    assert msg.entry == 5
    assert msg.group == gid
    assert msg.view_id == 3


def test_empty_field_name_rejected():
    msg = Message()
    with pytest.raises(CodecError):
        msg[""] = 1
