"""Edge-case coverage for the kernel and toolkit stubs."""

import pytest

from repro import IsisCluster, Message
from repro.errors import SiteDown
from repro.msg import make_group_address
from repro.net.packet import KIND_DATA, Frame


def test_undecodable_transport_message_counted_not_fatal():
    system = IsisCluster(n_sites=2, seed=100)
    system.run_for(1.0)
    # Inject garbage bytes at the transport level.
    system.site(0).transport.send(1, b"\xde\xad\xbe\xef")
    system.run_for(2.0)
    assert system.sim.trace.value("kernel.undecodable") == 1
    assert system.kernel(1).alive


def test_unknown_protocol_counted_not_fatal():
    system = IsisCluster(n_sites=2, seed=101)
    system.run_for(1.0)
    system.kernel(0).send_to_site(1, Message(_proto="zz.unknown", x=1))
    system.run_for(2.0)
    assert system.sim.trace.value("kernel.unknown_proto") == 1


def test_send_to_down_site_rejects_promise():
    system = IsisCluster(n_sites=2, seed=102)
    system.run_for(1.0)
    system.crash_site(0)
    kernel = system.kernel(1)
    # The local site is up, sending into the void is fine (retransmits
    # until the view change resets the channel) — but sending FROM a
    # dead site must reject.
    dead_site = system.site(0)
    with pytest.raises(SiteDown):
        dead_site.send_bytes(1, b"x")


def test_stub_raises_when_site_has_no_kernel():
    system = IsisCluster(n_sites=2, seed=103)
    process, isis = system.spawn(0, "app")
    system.crash_site(0)

    # The process is dead; the stub's hop detects the missing kernel.
    from repro.errors import SiteDown as SD
    with pytest.raises(SD):
        isis._kernel()


def test_group_data_for_unknown_group_buffers_quietly():
    """A data message for a group we never heard of must not crash the
    kernel (it buffers as pre-view traffic of a future welcome)."""
    system = IsisCluster(n_sites=2, seed=104)
    system.run_for(1.0)
    ghost = make_group_address(0, 42)
    env = Message(_proto="g.cb", gid=ghost, view=3, origin=0, gseq=1,
                  m=Message(x=1), entry=16, cb_sender=ghost, cb_seq=1)
    system.kernel(0).send_to_site(1, env)
    system.run_for(2.0)
    assert system.kernel(1).alive
    engine = system.kernel(1).engines.get(ghost.process())
    assert engine is not None and not engine.installed


def test_stale_group_message_dropped():
    system = IsisCluster(n_sites=2, seed=105)
    members = []
    deliveries = []
    p0, isis0 = system.spawn(0, "m0")
    p0.bind(16, lambda msg: deliveries.append(msg))
    gid_box = {}

    def create():
        gid_box["gid"] = yield isis0.pg_create("edge")

    p0.spawn(create(), "create")
    system.run_for(3.0)
    engine = system.kernel(0).engines[gid_box["gid"].process()]
    # Hand the engine a message from an obsolete view.
    env = Message(_proto="g.cb", gid=gid_box["gid"], view=0, origin=1,
                  gseq=1, m=Message(x=1), entry=16,
                  cb_sender=p0.address.process(), cb_seq=1)
    engine.handle(1, env)
    system.run_for(2.0)
    assert deliveries == []
    assert system.sim.trace.value("engine.stale_view_drop") == 1


def test_heartbeats_flow_between_sites():
    system = IsisCluster(n_sites=2, seed=106)
    system.run_for(5.0)
    assert system.sim.trace.value("fd.suspicions") == 0
    # Both monitors have fresh arrival state.
    for site in (0, 1):
        assert not system.kernel(site).heartbeat.suspected


def test_loopback_send_pays_encoding():
    """send_to_site to self still round-trips the codec (fidelity)."""
    system = IsisCluster(n_sites=1, seed=107)
    system.run_for(1.0)
    got = []
    system.kernel(0).register_service("t.", lambda src, msg: got.append(
        (src, msg["payload"])))
    system.kernel(0).send_to_site(0, Message(_proto="t.x", payload=b"\x00\x01"))
    system.run_for(1.0)
    assert got == [(0, b"\x00\x01")]


def test_second_member_join_same_site():
    """Two members of one group on the same site share the engine."""
    system = IsisCluster(n_sites=2, seed=108)
    got = {"a": [], "b": []}
    pa, isis_a = system.spawn(0, "a")
    pb, isis_b = system.spawn(0, "b")
    pa.bind(16, lambda msg: got["a"].append(msg["q"]))
    pb.bind(16, lambda msg: got["b"].append(msg["q"]))
    gid_box = {}

    def create():
        gid_box["gid"] = yield isis_a.pg_create("samesite")

    pa.spawn(create(), "create")
    system.run_for(3.0)

    def join():
        yield isis_b.pg_join(gid_box["gid"])

    pb.spawn(join(), "join")
    system.run_for(30.0)

    def send():
        yield isis_a.cbcast(gid_box["gid"], 16, q="both")

    pa.spawn(send(), "send")
    system.run_for(10.0)
    assert got["a"] == ["both"]
    assert got["b"] == ["both"]
    # One engine serves both local members.
    assert len(system.kernel(0).engines) == 1


def test_cluster_restart_after_total_failure():
    """All sites crash; the site-view bootstrap reforms the system."""
    system = IsisCluster(n_sites=3, seed=109)
    system.run_for(5.0)
    for site in range(3):
        system.crash_site(site)
    system.run_for(5.0)
    for site in range(3):
        system.restart_site(site)
    system.run_for(120.0)
    views = [system.kernel(s).site_view for s in range(3)]
    assert all(v is not None for v in views)
    assert all(set(v.sites()) == {0, 1, 2} for v in views)
    # New incarnations everywhere.
    assert all(v.incarnation_of(s) == 1 for v in views for s in v.sites())
