"""Unit tests for the spanning-tree and shard layers behind tree mode.

The :class:`SpanningTree` is a pure function of a sorted site list, so
these tests pin down the rotation/heap math every member must agree on;
the shard tests pin the deterministic hash (reproducible trajectories —
no interpreter ``hash``) and the :class:`ShardedWaitIndex` API parity
with the flat :class:`WaitIndex`.
"""

from repro.core.shards import GroupShard, ShardedWaitIndex, shard_of
from repro.core.tree import SpanningTree, min_merge_have_vectors
from repro.msg.address import make_group_address, make_process_address


class TestSpanningTree:
    def test_sites_sorted_and_deduped(self):
        tree = SpanningTree([5, 1, 3, 1, 5], fanout=2)
        assert tree.sites == [1, 3, 5]
        assert len(tree) == 3
        assert 3 in tree and 2 not in tree

    def test_heap_layout_from_root(self):
        tree = SpanningTree(range(10), fanout=3)
        assert tree.children(0, 0) == [1, 2, 3]
        assert tree.children(0, 1) == [4, 5, 6]
        assert tree.children(0, 2) == [7, 8, 9]
        assert tree.children(0, 3) == []
        assert tree.parent(0, 0) is None
        assert tree.parent(0, 4) == 1
        assert tree.parent(0, 9) == 2

    def test_rotation_every_root_gets_full_tree(self):
        sites = [2, 4, 7, 9, 11]
        tree = SpanningTree(sites, fanout=2)
        for root in sites:
            seen = set()
            frontier = [root]
            while frontier:
                site = frontier.pop()
                assert site not in seen, "cycle in spanning tree"
                seen.add(site)
                for child in tree.children(root, site):
                    assert tree.parent(root, child) == site
                    frontier.append(child)
            assert seen == set(sites)

    def test_unknown_root_or_site_is_inert(self):
        tree = SpanningTree([1, 2, 3], fanout=2)
        assert tree.children(1, 99) == []
        assert tree.children(99, 1) == []
        assert tree.parent(99, 1) is None
        assert tree.subtree_size(1, 99) == 0

    def test_depth_matches_heap_height(self):
        assert SpanningTree([0], fanout=2).depth() == 0
        assert SpanningTree(range(2), fanout=2).depth() == 1
        assert SpanningTree(range(3), fanout=2).depth() == 1
        assert SpanningTree(range(4), fanout=2).depth() == 2
        assert SpanningTree(range(256), fanout=4).depth() == 4
        # Fanout 1 degrades to a chain: depth n-1.
        assert SpanningTree(range(6), fanout=1).depth() == 5

    def test_subtree_sizes_partition_the_view(self):
        tree = SpanningTree(range(11), fanout=3)
        for root in range(11):
            assert tree.subtree_size(root, root) == 11
            kids = tree.children(root, root)
            assert sum(tree.subtree_size(root, k) for k in kids) == 10


class TestMinMergeHaveVectors:
    def test_empty_and_identity(self):
        assert min_merge_have_vectors([]) == {}
        assert min_merge_have_vectors([{1: 4, 2: 7}]) == {1: 4, 2: 7}

    def test_pointwise_minimum(self):
        merged = min_merge_have_vectors([{1: 4, 2: 7}, {1: 6, 2: 3}])
        assert merged == {1: 4, 2: 3}

    def test_absent_origin_reads_as_zero(self):
        # Origin 2 missing from the second vector: its floor there is 0,
        # so it must not survive the merge (the subtree has nothing).
        merged = min_merge_have_vectors([{1: 4, 2: 7}, {1: 6}])
        assert merged == {1: 4}


G1 = make_group_address(0, 1)
G2 = make_group_address(3, 1)
M1 = make_process_address(1, 0, 7)
W1 = (G2, (M1, 1))
W2 = (G1, (M1, 2))


class TestShards:
    def test_shard_of_is_deterministic_and_in_range(self):
        for n in (1, 4, 8):
            for gid in (G1, G2):
                idx = shard_of(gid, n)
                assert 0 <= idx < n
                assert idx == shard_of(gid, n)
        assert shard_of(G1, 8) == ((G1.site * 1000003) ^ G1.local_id) % 8

    def test_group_shard_peak_tracks_high_water(self):
        shard = GroupShard(0)
        shard.add(G1)
        shard.add(G2)
        assert shard.peak_groups == 2
        shard.stab_dirty.add(G1)
        shard.remove(G1)
        assert shard.keys == {G2}
        assert G1 not in shard.stab_dirty
        assert shard.peak_groups == 2  # high-water survives removal

    def test_sharded_wait_index_api_parity(self):
        wi = ShardedWaitIndex(4)
        wi.register_counter(G1, M1, 3, W1)
        wi.register_view(G2, W2)
        assert len(wi) == 2
        assert wi.peak_size >= 1
        assert wi.on_advance(G1, M1, 2) == []
        assert wi.on_advance(G1, M1, 3) == [W1]
        assert wi.on_view_event(G2) == [W2]
        assert len(wi) == 0

    def test_sharded_wait_index_one_slot_across_partitions(self):
        # Re-registration against a group in a *different* partition must
        # still migrate the single slot, not leak the old one.
        wi = ShardedWaitIndex(4)
        wi.register_counter(G1, M1, 3, W1)
        wi.register_view(G2, W1)
        assert len(wi) == 1
        assert wi.on_advance(G1, M1, 3) == []
        assert wi.on_view_event(G2) == [W1]

    def test_purge_engine_sweeps_all_partitions(self):
        wi = ShardedWaitIndex(4)
        wi.register_counter(G1, M1, 3, W1)   # waiter of engine G2
        wi.register_view(G2, W2)             # waiter of engine G1
        wi.purge_engine(G2)
        assert len(wi) == 1
        assert wi.on_view_event(G2) == [W2]
