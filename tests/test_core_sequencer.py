"""Unit tests: sequencer-mode ABCAST state, compact contexts, caching."""

import pytest

from repro import IsisCluster, IsisConfig, Message
from repro.core.abcast import UNSTAMPED_BASE, SequencerReceiver
from repro.core.vectorclock import (
    VectorClock,
    decode_context_compact,
    encode_context,
    encode_context_compact,
)
from repro.errors import CodecError
from repro.msg.address import make_group_address, make_process_address


def _env(origin, gseq):
    return Message(_proto="g.ab", origin=origin, gseq=gseq, m=Message())


class TestSequencerReceiver:
    def test_data_then_stamp_delivers(self):
        rx = SequencerReceiver(site_id=1)
        assert rx.hold((0, 1), _env(0, 1)) == []
        out = rx.apply_stamps([((0, 1), 1)])
        assert [(m["origin"], m["gseq"]) for m in out] == [(0, 1)]
        assert rx.delivered_priority((0, 1)) == (1, 0)

    def test_stamp_then_data_delivers(self):
        rx = SequencerReceiver(site_id=1)
        assert rx.apply_stamps([((2, 5), 1)]) == []
        out = rx.hold((2, 5), _env(2, 5))
        assert [(m["origin"], m["gseq"]) for m in out] == [(2, 5)]

    def test_contiguous_stamp_gating(self):
        """Stamp 2 with data must wait for stamp 1 (no skipping gaps)."""
        rx = SequencerReceiver(site_id=1)
        rx.hold((0, 1), _env(0, 1))
        rx.hold((3, 1), _env(3, 1))
        # Stamp 2 arrives first (its data is held) — must NOT deliver.
        assert rx.apply_stamps([((3, 1), 2)]) == []
        # Stamp 1 unblocks both, in stamp order.
        out = rx.apply_stamps([((0, 1), 1)])
        assert [(m["origin"], m["gseq"]) for m in out] == [(0, 1), (3, 1)]

    def test_stamp_known_data_missing_blocks_later_stamps(self):
        rx = SequencerReceiver(site_id=1)
        rx.apply_stamps([((0, 1), 1), ((0, 2), 2)])
        rx.hold((0, 2), _env(0, 2))  # data for stamp 2 only
        assert rx.pending_count == 1
        assert rx.delivered_refs() == []
        out = rx.hold((0, 1), _env(0, 1))
        assert [(m["origin"], m["gseq"]) for m in out] == [(0, 1), (0, 2)]

    def test_duplicate_stamps_and_data_ignored(self):
        rx = SequencerReceiver(site_id=1)
        rx.hold((0, 1), _env(0, 1))
        rx.apply_stamps([((0, 1), 1)])
        assert rx.apply_stamps([((0, 1), 1)]) == []
        assert rx.hold((0, 1), _env(0, 1)) == []
        assert rx.delivered_refs() == [(0, 1)]

    def test_pending_state_shape(self):
        rx = SequencerReceiver(site_id=1)
        rx.hold((0, 3), _env(0, 3))          # unstamped, held
        rx.apply_stamps([((2, 1), 4)])        # stamped, data in flight
        state = {tuple(e["ref"]): e for e in rx.pending_state()}
        assert state[(2, 1)]["final"] is True
        assert state[(2, 1)]["prio"] == [4, 0]
        assert state[(0, 3)]["final"] is False
        assert state[(0, 3)]["prio"] == [UNSTAMPED_BASE + 3, 0]

    def test_force_order_delivers_listed_order_skips_unheld(self):
        rx = SequencerReceiver(site_id=1)
        rx.hold((0, 1), _env(0, 1))
        rx.hold((2, 1), _env(2, 1))
        rx.apply_stamps([((2, 1), 7)])  # stamped but gated (stamps 1..6 unknown)
        out = rx.force_order([
            [(2, 1), (7, 0)],
            [(9, 9), (8, 0)],                      # held nowhere: skipped
            [(0, 1), (UNSTAMPED_BASE + 1, 0)],
        ])
        assert [(m["origin"], m["gseq"]) for m in out] == [(2, 1), (0, 1)]
        assert rx.pending_count == 0
        assert rx.delivered_priority((0, 1)) == (UNSTAMPED_BASE + 1, 0)

    def test_on_new_view_resets(self):
        rx = SequencerReceiver(site_id=1)
        rx.hold((0, 1), _env(0, 1))
        rx.apply_stamps([((0, 1), 1), ((0, 2), 2)])
        rx.on_new_view()
        assert rx.pending_count == 0
        assert rx.delivered_refs() == []
        # Fresh view: stamp numbering restarts at 1.
        rx.hold((0, 1), _env(0, 1))
        assert len(rx.apply_stamps([((0, 1), 1)])) == 1


def _ctx(*entries):
    """entries: (group_no, view_id, {member_no: count})"""
    out = {}
    for group_no, view_id, counts in entries:
        gid = make_group_address(0, group_no)
        vc = VectorClock({
            make_process_address(0, 1, m): c for m, c in counts.items()
        })
        out[gid.process()] = (view_id, vc)
    return out


def _same_ctx(a, b):
    assert set(a) == set(b)
    for gid in a:
        assert a[gid][0] == b[gid][0]
        assert a[gid][1] == b[gid][1]


class TestCompactContextCodec:
    def test_full_roundtrip(self):
        ctx = _ctx((1, 3, {7: 2, 8: 5}), (2, 1, {9: 1}))
        decoded = decode_context_compact(encode_context_compact(ctx))
        _same_ctx(decoded, ctx)

    def test_full_is_much_smaller_than_dict_encoding(self):
        ctx = _ctx((1, 3, {m: m for m in range(1, 9)}))
        compact = Message(c=encode_context_compact(ctx)).size_bytes
        legacy = Message(c=encode_context(ctx)).size_bytes
        assert compact < legacy / 2.5

    def test_delta_chain_reconstructs_absolute_contexts(self):
        c1 = _ctx((1, 1, {7: 1}))
        c2 = _ctx((1, 1, {7: 2, 8: 1}), (2, 1, {9: 4}))   # counts grow, group added
        c3 = _ctx((1, 2, {7: 1}))                          # view advance + removal
        prev_abs = None
        prev_sent = None
        for cur in (c1, c2, c3):
            data = encode_context_compact(cur, prev_sent)
            decoded = decode_context_compact(data, prev_abs)
            _same_ctx(decoded, cur)
            prev_abs = decoded
            prev_sent = cur

    def test_delta_smaller_than_full(self):
        c1 = _ctx((1, 1, {m: 10 for m in range(1, 9)}))
        counts = {m: 10 for m in range(1, 9)}
        counts[3] = 11
        c2 = _ctx((1, 1, counts))
        full = encode_context_compact(c2)
        delta = encode_context_compact(c2, c1)
        assert len(delta) < len(full)

    def test_delta_without_predecessor_raises(self):
        c1 = _ctx((1, 1, {7: 1}))
        c2 = _ctx((1, 1, {7: 2}))
        delta = encode_context_compact(c2, c1)
        with pytest.raises(CodecError):
            decode_context_compact(delta, None)

    def test_trailing_garbage_raises(self):
        data = encode_context_compact(_ctx((1, 1, {7: 1})))
        with pytest.raises(CodecError):
            decode_context_compact(data + b"\x00")


class TestMessageEncodeCache:
    def test_encode_cached_until_mutation(self):
        msg = Message(a=1, b="x")
        first = msg.encode()
        assert msg.encode() is first
        msg["c"] = 2
        second = msg.encode()
        assert second != first
        assert msg.encode() is second

    def test_decode_seeds_cache_canonically(self):
        msg = Message(a=1, b=[1, 2, {"k": b"v"}], m=Message(x=1.5))
        data = msg.encode()
        decoded = Message.decode(data)
        assert decoded.encode() == data
        assert decoded.size_bytes == len(data)

    def test_copy_shares_cache_but_not_invalidation(self):
        msg = Message(a=1)
        data = msg.encode()
        copy = msg.copy()
        assert copy.encode() is data
        copy["b"] = 2
        assert msg.encode() is data
        assert copy.encode() != data


class TestAbcastCounters:
    def test_stats_expose_abcast_phase_counters(self):
        system = IsisCluster(n_sites=2, seed=5,
                             isis_config=IsisConfig(abcast_mode="sequencer"))
        stats = system.kernel(0).stats()
        for key in ("abcast.proposals", "abcast.finals",
                    "abcast.seq_stamps", "abcast.token_handoffs"):
            assert key in stats, key

    def test_unknown_abcast_mode_rejected(self):
        from repro.core.engine import GroupEngine
        from repro.errors import GroupError
        system = IsisCluster(n_sites=2, seed=5,
                             isis_config=IsisConfig(abcast_mode="bogus"))
        with pytest.raises(GroupError):
            GroupEngine(system.kernel(0), make_group_address(0, 1))
