"""Unit tests for the delivery pipeline: batching, stability, stats."""

import pytest

from repro import IsisCluster, IsisConfig


def _two_member_group(config, n_sites=2, seed=31):
    system = IsisCluster(n_sites=n_sites, seed=seed, isis_config=config)
    deliveries = {s: [] for s in range(n_sites)}
    members = []
    for site in range(n_sites):
        proc, isis = system.spawn(site, f"m{site}")
        proc.bind(16, lambda msg, s=site: deliveries[s].append(msg["tag"]))
        members.append((proc, isis))

    def create():
        yield members[0][1].pg_create("pipe")

    members[0][0].spawn(create(), "create")
    system.run_for(3.0)
    for i in range(1, n_sites):
        def join(isis=members[i][1]):
            gid = yield isis.pg_lookup("pipe")
            yield isis.pg_join(gid)

        members[i][0].spawn(join(), f"join{i}")
        system.run_for(20.0)
    return system, members, deliveries


def _burst(system, members, idx, count, concurrency=4):
    def stream(stream_no):
        gid = yield members[idx][1].pg_lookup("pipe")
        for i in range(count):
            yield members[idx][1].cbcast(
                gid, 16, tag=f"t{stream_no}.{i}", payload=bytes(100))

    for stream_no in range(concurrency):
        members[idx][0].spawn(stream(stream_no), f"s{stream_no}")


class TestBatchingWireBehavior:
    def test_zero_window_sends_no_batches(self):
        """``batch_window=0`` preserves one-envelope-per-message exactly."""
        system, members, deliveries = _two_member_group(
            IsisConfig(batch_window=0.0))
        _burst(system, members, 0, 10)
        system.run_for(20.0)
        assert system.sim.trace.value("batch.sent") == 0
        assert system.sim.trace.value("batch.envelopes") == 0
        assert system.kernel(0).stats()["batches_sent"] == 0
        assert len(deliveries[1]) == 40

    def test_window_coalesces_envelopes(self):
        system, members, deliveries = _two_member_group(
            IsisConfig(batch_window=0.010))
        _burst(system, members, 0, 10)
        system.run_for(20.0)
        stats = system.kernel(0).stats()
        assert stats["batches_sent"] > 0
        assert stats["envelopes_batched"] == 40
        # Coalescing actually happened: fewer wire messages than envelopes.
        assert stats["batches_sent"] < stats["envelopes_batched"]
        assert stats["batch_pending"] == 0
        assert len(deliveries[1]) == 40
        # No reordering within a sender despite coalescing.
        for stream_no in range(4):
            seq = [int(t.split(".")[1]) for t in deliveries[1]
                   if t.startswith(f"t{stream_no}.")]
            assert seq == sorted(seq)

    def test_max_bytes_flushes_before_window(self):
        """A buffer hitting ``batch_max_bytes`` does not wait the window."""
        config = IsisConfig(batch_window=5.0, batch_max_bytes=2000)
        system, members, deliveries = _two_member_group(config)

        def stream():
            gid = yield members[0][1].pg_lookup("pipe")
            for i in range(8):
                yield members[0][1].cbcast(gid, 16, tag=f"big.{i}",
                                           payload=bytes(900))

        members[0][0].spawn(stream(), "big")
        # Well inside the 5 s window: deliveries only happen because the
        # byte cap forced flushes.
        system.run_for(3.0)
        assert len(deliveries[1]) >= 4
        assert system.sim.trace.value("batch.sent") >= 2

    def test_wedge_drains_batch_buffers(self):
        """A flush (here: a join) pushes out buffered envelopes."""
        config = IsisConfig(batch_window=5.0)  # would idle past the test
        system, members, deliveries = _two_member_group(config)

        def send_then_join():
            gid = yield members[0][1].pg_lookup("pipe")
            yield members[0][1].cbcast(gid, 16, tag="pre-join")

        members[0][0].spawn(send_then_join(), "send")
        system.run_for(0.1)  # buffered, window far away
        late, late_isis = system.spawn(1, "late")
        late.bind(16, lambda msg: None)

        def join():
            gid = yield late_isis.pg_lookup("pipe")
            yield late_isis.pg_join(gid)

        late.spawn(join(), "join")
        system.run_for(30.0)
        assert [m for m in deliveries[1]] == ["pre-join"]
        assert system.kernel(0).stats()["batch_pending"] == 0


class TestPiggybackedStability:
    def test_trim_advances_without_rounds(self):
        config = IsisConfig(batch_window=0.010, stab_announce_every=8,
                            stability_interval=1e9)  # rounds never fire
        system, members, _ = _two_member_group(config, n_sites=3)
        _burst(system, members, 0, 20)
        system.run_for(30.0)
        assert system.sim.trace.value("stability.piggyback_trimmed") > 0
        for site in range(3):
            stats = system.kernel(site).stats()
            assert stats["buffered_messages"] == 0
            assert stats["buffered_bytes"] == 0
            assert stats["trimmed_messages"] > 0

    def test_fallback_round_skipped_under_traffic(self):
        config = IsisConfig(batch_window=0.010, stab_announce_every=8)
        system, members, _ = _two_member_group(config, n_sites=3)

        def stream(stop):
            gid = yield members[0][1].pg_lookup("pipe")
            i = 0
            while not stop["done"]:
                yield members[0][1].cbcast(gid, 16, tag=f"x.{i}")
                i += 1

        stop = {"done": False}
        for _ in range(3):
            members[0][0].spawn(stream(stop), "stream")
        system.run_for(30.0)
        stop["done"] = True
        assert system.sim.trace.value("stability.round_skipped") > 0

    def test_piggyback_disabled_still_trims_via_rounds(self):
        config = IsisConfig(piggyback_stability=False, stab_announce_every=0)
        system, members, _ = _two_member_group(config)
        _burst(system, members, 0, 10)
        system.run_for(30.0)  # several stability intervals
        assert system.sim.trace.value("stability.piggyback_trimmed") == 0
        assert system.kernel(0).stats()["buffered_messages"] == 0


class TestKernelStats:
    def test_stats_shape_and_transport_counters(self):
        system, members, _ = _two_member_group(IsisConfig())
        _burst(system, members, 0, 5)
        system.run_for(10.0)
        stats = system.kernel(0).stats()
        for key in ("groups", "buffered_messages", "buffered_bytes",
                    "trimmed_messages", "batches_sent", "envelopes_batched",
                    "batch_pending", "transport.frames_sent",
                    "transport.msgs_sent", "transport.bytes_sent"):
            assert key in stats, key
        assert stats["groups"] == 1
        assert stats["transport.msgs_sent"] > 0
        assert stats["transport.frames_sent"] >= stats["transport.msgs_sent"]


class TestStoreAccounting:
    def test_buffered_bytes_track_record_and_trim(self):
        from repro.core.store import MessageStore
        from repro.msg.message import Message

        store = MessageStore()
        env1 = Message(_proto="g.cb", origin=0, gseq=1, payload=b"a" * 50)
        env2 = Message(_proto="g.cb", origin=0, gseq=2, payload=b"b" * 80)
        assert store.record(0, 1, env1)
        assert store.record(0, 2, env2)
        assert store.buffered_bytes == env1.size_bytes + env2.size_bytes
        assert store.trim_stable({0: 1}) == 1
        assert store.trimmed_total == 1
        assert store.buffered_bytes == env2.size_bytes
        store.reset()
        assert store.buffered_bytes == 0
        assert store.buffered_count == 0

    def test_record_rejects_re_arrival_below_contiguous_floor(self):
        from repro.core.store import MessageStore
        from repro.msg.message import Message

        store = MessageStore()
        for gseq in (1, 2, 3):
            store.record(0, gseq, Message(_proto="g.cb", origin=0, gseq=gseq))
        store.trim_stable({0: 3})
        # A late copy of a trimmed (stable) message is a duplicate, not
        # a new message — and nothing below the floor counts as missing.
        assert not store.record(0, 2, Message(_proto="g.cb", origin=0, gseq=2))
        assert store.complete_for({0: 3})
        assert store.missing_from({0: 5}) == [(0, 4), (0, 5)]
