"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_after_orders_by_time():
    sim = Simulator()
    seen = []
    sim.call_after(2.0, seen.append, "b")
    sim.call_after(1.0, seen.append, "a")
    sim.call_after(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_schedule_order():
    sim = Simulator()
    seen = []
    for tag in ("first", "second", "third"):
        sim.call_after(1.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.call_after(5.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [5.0]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_after(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-0.1, lambda: None)


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    seen = []
    timer = sim.call_after(1.0, seen.append, "nope")
    timer.cancel()
    sim.call_after(2.0, seen.append, "yes")
    sim.run()
    assert seen == ["yes"]


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.call_after(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    sim.run()


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.call_after(1.0, seen.append, "early")
    sim.call_after(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_limits_execution():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_after(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_nested_scheduling_during_run():
    sim = Simulator()
    seen = []

    def outer():
        seen.append("outer")
        sim.call_after(1.0, seen.append, "inner")

    sim.call_after(1.0, outer)
    sim.run()
    assert seen == ["outer", "inner"]
    assert sim.now == 2.0


def test_reentrant_run_rejected():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as err:
            errors.append(err)

    sim.call_after(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_pending_events_counts_only_live_timers():
    sim = Simulator()
    t1 = sim.call_after(1.0, lambda: None)
    sim.call_after(2.0, lambda: None)
    t1.cancel()
    assert sim.pending_events == 1


def test_rng_streams_are_deterministic_and_independent():
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    draws_a = [sim_a.rng("x").random() for _ in range(5)]
    draws_b = [sim_b.rng("x").random() for _ in range(5)]
    assert draws_a == draws_b
    # A different stream name gives a different sequence.
    assert draws_a != [Simulator(seed=7).rng("y").random() for _ in range(5)]


def test_rng_stream_isolation_from_creation_order():
    sim_a = Simulator(seed=3)
    sim_a.rng("first").random()
    value_a = sim_a.rng("second").random()
    sim_b = Simulator(seed=3)
    value_b = sim_b.rng("second").random()
    assert value_a == value_b


class TestTimerHeapCompaction:
    def test_cancel_tracks_dead_heap_entries(self):
        sim = Simulator()
        timers = [sim.call_after(10.0, lambda: None) for _ in range(10)]
        for t in timers[:4]:
            t.cancel()
        stats = sim.stats()
        assert stats["timers.cancelled_pending"] == 4
        assert stats["timers.heap_size"] == 10
        assert sim.pending_events == 6

    def test_compaction_when_majority_dead(self):
        sim = Simulator()
        n = Simulator.COMPACT_MIN_HEAP * 2
        timers = [sim.call_after(10.0, lambda: None) for _ in range(n)]
        for t in timers[:-1]:
            t.cancel()
        stats = sim.stats()
        assert stats["timers.compactions"] >= 1
        # Post-compaction the heap is too small to compact again; what
        # remains dead is bounded by the compaction floor.
        assert stats["timers.heap_size"] < Simulator.COMPACT_MIN_HEAP
        assert sim.pending_events == 1
        # The surviving timer still fires.
        fired = []
        timers[-1].fn = fired.append  # type: ignore[assignment]
        timers[-1].args = (1,)
        sim.run()
        assert fired == [1]

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        timers = [sim.call_after(10.0, lambda: None) for _ in range(8)]
        for t in timers:
            t.cancel()
        assert sim.stats()["timers.compactions"] == 0
        sim.run()
        assert sim.stats()["timers.cancelled_pending"] == 0

    def test_executed_timer_not_counted_as_cancelled(self):
        sim = Simulator()
        sim.call_after(1.0, lambda: None)
        sim.run()
        stats = sim.stats()
        assert stats["timers.cancelled_pending"] == 0
        assert stats["timers.heap_size"] == 0

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(Simulator.COMPACT_MIN_HEAP * 2):
            t = sim.call_after(1.0 + i * 0.001, fired.append, i)
            if i % 7:
                t.cancel()
            else:
                keep.append(i)
        sim.run()
        assert fired == keep
