"""Unit tests for the 8-byte address scheme (repro.msg.address)."""

import pytest

from repro.errors import AddressError
from repro.msg import (
    ADDRESS_SIZE,
    Address,
    make_group_address,
    make_process_address,
)


def test_pack_is_eight_bytes():
    addr = make_process_address(3, 1, 42, entry=7)
    assert len(addr.pack()) == ADDRESS_SIZE


def test_pack_unpack_roundtrip():
    addr = make_process_address(65535, 255, 65535, entry=255)
    assert Address.unpack(addr.pack()) == addr


def test_group_flag_roundtrip():
    gid = make_group_address(2, 9)
    assert gid.is_group
    assert Address.unpack(gid.pack()).is_group


def test_null_address():
    null = Address.null()
    assert null.is_null
    assert Address.unpack(null.pack()).is_null


def test_unpack_rejects_wrong_length():
    with pytest.raises(AddressError):
        Address.unpack(b"\x00" * 7)


def test_field_range_validation():
    with pytest.raises(AddressError):
        Address(site=70000)
    with pytest.raises(AddressError):
        Address(incarnation=300)
    with pytest.raises(AddressError):
        Address(local_id=-1)
    with pytest.raises(AddressError):
        Address(entry=256)


def test_with_entry_changes_only_entry():
    addr = make_process_address(1, 0, 5, entry=0)
    entry9 = addr.with_entry(9)
    assert entry9.entry == 9
    assert entry9.process() == addr.process()


def test_same_process_ignores_entry():
    a = make_process_address(1, 2, 3, entry=4)
    b = make_process_address(1, 2, 3, entry=200)
    c = make_process_address(1, 2, 4, entry=4)
    assert a.same_process(b)
    assert not a.same_process(c)


def test_incarnation_distinguishes_restarted_site():
    before = make_process_address(1, 0, 3)
    after = make_process_address(1, 1, 3)
    assert not before.same_process(after)


def test_addresses_are_hashable_and_ordered():
    a = make_process_address(1, 0, 1)
    b = make_process_address(1, 0, 2)
    assert len({a, b, a}) == 2
    assert sorted([b, a]) == [a, b]


def test_str_forms():
    assert "grp" in str(make_group_address(1, 2))
    assert "proc" in str(make_process_address(1, 0, 2))
    assert str(Address.null()) == "<null>"
