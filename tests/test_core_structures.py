"""Unit tests for views, vector clocks, message store, causal/total order."""

import pytest

from repro.errors import GroupError
from repro.msg import Message, make_group_address, make_process_address
from repro.core.abcast import TotalOrderReceiver, TotalOrderSender
from repro.core.cbcast import CausalReceiver
from repro.core.store import MessageStore
from repro.core.vectorclock import VectorClock, decode_context, encode_context
from repro.core.view import View

GID = make_group_address(0, 1)
P0 = make_process_address(0, 0, 1)
P1 = make_process_address(1, 0, 1)
P2 = make_process_address(2, 0, 1)


class TestView:
    def test_ranking_is_by_position(self):
        view = View(gid=GID, view_id=1, members=(P0, P1, P2))
        assert view.rank_of(P0) == 0
        assert view.rank_of(P2) == 2
        assert view.rank_of(make_process_address(9, 0, 9)) == -1

    def test_rank_ignores_entry_byte(self):
        view = View(gid=GID, view_id=1, members=(P0,))
        assert view.rank_of(P0.with_entry(99)) == 0

    def test_coordinator_is_oldest(self):
        view = View(gid=GID, view_id=1, members=(P1, P0))
        assert view.coordinator() == P1

    def test_empty_view_has_no_coordinator(self):
        view = View(gid=GID, view_id=1, members=())
        with pytest.raises(GroupError):
            view.coordinator()

    def test_adding_appends_youngest(self):
        view = View(gid=GID, view_id=1, members=(P0,))
        view2 = view.adding(P1)
        assert view2.members == (P0, P1)
        assert view2.view_id == 2

    def test_adding_existing_member_rejected(self):
        view = View(gid=GID, view_id=1, members=(P0,))
        with pytest.raises(GroupError):
            view.adding(P0)

    def test_without_preserves_order(self):
        view = View(gid=GID, view_id=1, members=(P0, P1, P2))
        view2 = view.without([P1])
        assert view2.members == (P0, P2)

    def test_duplicate_members_rejected(self):
        with pytest.raises(GroupError):
            View(gid=GID, view_id=1, members=(P0, P0))

    def test_member_sites_deduplicated_sorted(self):
        other_at_0 = make_process_address(0, 0, 2)
        view = View(gid=GID, view_id=1, members=(P2, P0, other_at_0))
        assert view.member_sites() == (0, 2)

    def test_wire_roundtrip(self):
        view = View(gid=GID, view_id=5, members=(P0, P1))
        msg = Message(v=view.to_value())
        decoded = View.from_value(Message.decode(msg.encode())["v"])
        assert decoded == view

    def test_successor_same_members_bumps_id(self):
        view = View(gid=GID, view_id=3, members=(P0,))
        nxt = view.successor_same_members()
        assert nxt.view_id == 4 and nxt.members == view.members


class TestVectorClock:
    def test_increment_and_get(self):
        vc = VectorClock()
        assert vc.get(P0) == 0
        assert vc.increment(P0) == 1
        assert vc.increment(P0) == 2
        assert vc.get(P0) == 2

    def test_entry_ignores_entry_byte(self):
        vc = VectorClock()
        vc.increment(P0.with_entry(5))
        assert vc.get(P0) == 1

    def test_merge_is_pointwise_max(self):
        a, b = VectorClock(), VectorClock()
        a.set(P0, 3)
        a.set(P1, 1)
        b.set(P1, 5)
        a.merge(b)
        assert a.get(P0) == 3 and a.get(P1) == 5

    def test_dominates(self):
        a, b = VectorClock(), VectorClock()
        a.set(P0, 2)
        b.set(P0, 1)
        assert a.dominates(b)
        assert not b.dominates(a)
        b.set(P1, 1)
        assert not a.dominates(b)

    def test_dominates_with_restriction(self):
        a, b = VectorClock(), VectorClock()
        b.set(P0, 1)
        b.set(P1, 9)
        a.set(P0, 1)
        assert a.dominates(b, restrict_to=[P0])
        assert not a.dominates(b)

    def test_restrict_drops_other_entries(self):
        vc = VectorClock()
        vc.set(P0, 1)
        vc.set(P1, 2)
        restricted = vc.restrict([P0])
        assert restricted.get(P0) == 1 and restricted.get(P1) == 0

    def test_equality_treats_missing_as_zero(self):
        a, b = VectorClock(), VectorClock()
        a.set(P0, 0)
        assert a == b

    def test_wire_roundtrip(self):
        vc = VectorClock()
        vc.set(P0, 7)
        msg = Message(vc=vc.to_value())
        assert VectorClock.from_value(Message.decode(msg.encode())["vc"]) == vc

    def test_context_roundtrip(self):
        vc = VectorClock()
        vc.set(P1, 4)
        ctx = {GID: (3, vc)}
        msg = Message(ctx=encode_context(ctx))
        decoded = decode_context(Message.decode(msg.encode())["ctx"])
        assert decoded[GID][0] == 3
        assert decoded[GID][1] == vc


class TestMessageStore:
    def test_record_and_dedupe(self):
        store = MessageStore()
        assert store.record(0, 1, Message(x=1))
        assert not store.record(0, 1, Message(x=1))
        assert store.buffered_count == 1

    def test_have_vector_tracks_contiguity(self):
        store = MessageStore()
        store.record(0, 1, Message())
        store.record(0, 3, Message())  # gap at 2
        assert store.have_vector() == {0: 1}
        store.record(0, 2, Message())
        assert store.have_vector() == {0: 3}

    def test_union_and_missing(self):
        a, b = MessageStore(), MessageStore()
        a.record(0, 1, Message())
        a.record(0, 2, Message())
        b.record(1, 1, Message())
        union = MessageStore.union([a.have_vector(), b.have_vector()])
        assert union == {0: 2, 1: 1}
        assert a.missing_from(union) == [(1, 1)]
        assert b.missing_from(union) == [(0, 1), (0, 2)]
        assert a.complete_for({0: 2})
        assert not a.complete_for(union)

    def test_trim_stable(self):
        store = MessageStore()
        for seq in (1, 2, 3):
            store.record(0, seq, Message())
        dropped = store.trim_stable({0: 2})
        assert dropped == 2
        assert store.buffered_count == 1
        assert store.has(0, 3)

    def test_reset_clears_everything(self):
        store = MessageStore()
        store.record(0, 1, Message())
        store.reset()
        assert store.buffered_count == 0
        assert store.have_vector() == {}


def _cb(sender, seq, ctx=None):
    msg = Message(cb_sender=sender, cb_seq=seq)
    if ctx:
        msg["cb_ctx"] = encode_context(ctx)
    return msg


class TestCausalReceiver:
    def test_fifo_per_sender(self):
        rx = CausalReceiver(lambda ctx: True)
        assert rx.offer(_cb(P0, 2)) == []          # gap: seq 1 missing
        delivered = rx.offer(_cb(P0, 1))
        assert [m["cb_seq"] for m in delivered] == [1, 2]

    def test_senders_independent(self):
        rx = CausalReceiver(lambda ctx: True)
        assert len(rx.offer(_cb(P0, 1))) == 1
        assert len(rx.offer(_cb(P1, 1))) == 1

    def test_context_blocks_until_satisfied(self):
        satisfied = {"ok": False}
        rx = CausalReceiver(lambda ctx: satisfied["ok"])
        vc = VectorClock()
        vc.set(P1, 1)
        assert rx.offer(_cb(P0, 1, ctx={GID: (1, vc)})) == []
        satisfied["ok"] = True
        assert len(rx.recheck()) == 1

    def test_new_view_resets(self):
        rx = CausalReceiver(lambda ctx: True)
        rx.offer(_cb(P0, 1))
        rx.offer(_cb(P1, 2))  # stuck on gap
        rx.on_new_view()
        assert rx.pending_count == 0
        assert rx.delivered.get(P0) == 0
        # Sequence numbers restart in the new view.
        assert len(rx.offer(_cb(P0, 1))) == 1


class TestTotalOrder:
    def test_single_message_flow(self):
        rx = TotalOrderReceiver(site_id=0)
        prio = rx.propose((0, 1), Message(x="a"))
        delivered = rx.finalize((0, 1), prio)
        assert [m["x"] for m in delivered] == ["a"]

    def test_delivery_blocks_on_unfinalized_lower_priority(self):
        rx = TotalOrderReceiver(site_id=0)
        rx.propose((0, 1), Message(x="first"))   # prio (1, 0)
        rx.propose((1, 1), Message(x="second"))  # prio (2, 0)
        # Finalizing the *second* at a high priority cannot deliver it:
        # the first is still unfinalized with a lower proposal.
        assert rx.finalize((1, 1), (5, 1)) == []
        delivered = rx.finalize((0, 1), (1, 0))
        assert [m["x"] for m in delivered] == ["first", "second"]

    def test_same_final_order_at_all_sites(self):
        sender = TotalOrderSender()
        messages = {(0, 1): Message(x="m1"), (1, 1): Message(x="m2")}
        sites = [TotalOrderReceiver(site_id=i) for i in range(3)]
        finals = {}
        for ref, msg in messages.items():
            sender.start(ref, [0, 1, 2])
            for site in sites:
                final = sender.offer_proposal(
                    ref, site.site_id, site.propose(ref, msg))
                if final is not None:
                    finals[ref] = final
        orders = []
        for site in sites:
            got = []
            for ref, final in finals.items():
                got.extend(m["x"] for m in site.finalize(ref, final))
            orders.append(got)
        assert orders[0] == orders[1] == orders[2]
        assert sorted(orders[0]) == ["m1", "m2"]

    def test_sender_drop_site_completes_collection(self):
        sender = TotalOrderSender()
        sender.start((0, 1), [0, 1])
        assert sender.offer_proposal((0, 1), 0, (1, 0)) is None
        completed = sender.drop_site(1)
        assert completed == [((0, 1), (1, 0))]

    def test_force_order_delivers_cut(self):
        rx = TotalOrderReceiver(site_id=0)
        rx.propose((0, 1), Message(x="a"))
        rx.propose((1, 1), Message(x="b"))
        delivered = rx.force_order([
            [[1, 1], [7, 1]],
            [[0, 1], [9, 0]],
        ])
        assert [m["x"] for m in delivered] == ["b", "a"]
        assert rx.pending_count == 0

    def test_duplicate_finalize_is_noop(self):
        rx = TotalOrderReceiver(site_id=0)
        prio = rx.propose((0, 1), Message(x="a"))
        rx.finalize((0, 1), prio)
        assert rx.finalize((0, 1), prio) == []

    def test_pending_state_snapshot(self):
        rx = TotalOrderReceiver(site_id=2)
        rx.propose((0, 1), Message())
        state = rx.pending_state()
        assert state == [{"ref": [0, 1], "prio": [1, 2], "final": False}]
