"""Unit tests for fragmentation and reassembly (repro.net.packet)."""

import pytest

from repro.errors import NetworkError
from repro.net import Frame, Reassembler, fragment
from repro.net.packet import FRAME_HEADER_BYTES


class TestFragment:
    def test_small_message_single_fragment(self):
        assert fragment(b"abc", 4096) == [b"abc"]

    def test_empty_message_still_one_fragment(self):
        assert fragment(b"", 4096) == [b""]

    def test_exact_mtu_single_fragment(self):
        data = b"x" * 4096
        assert fragment(data, 4096) == [data]

    def test_mtu_plus_one_two_fragments(self):
        data = b"x" * 4097
        parts = fragment(data, 4096)
        assert len(parts) == 2
        assert parts[0] == b"x" * 4096 and parts[1] == b"x"

    def test_fragments_reconstruct(self):
        data = bytes(range(256)) * 100
        assert b"".join(fragment(data, 1000)) == data

    def test_bad_mtu_rejected(self):
        with pytest.raises(NetworkError):
            fragment(b"x", 0)


class TestReassembler:
    def test_single_fragment_completes_immediately(self):
        r = Reassembler()
        assert r.add(("ch", 1), 0, 1, b"whole") == b"whole"

    def test_in_order_fragments(self):
        r = Reassembler()
        assert r.add(("ch", 1), 0, 3, b"a") is None
        assert r.add(("ch", 1), 1, 3, b"b") is None
        assert r.add(("ch", 1), 2, 3, b"c") == b"abc"
        assert r.pending() == 0

    def test_out_of_order_fragments(self):
        r = Reassembler()
        assert r.add(("ch", 1), 2, 3, b"c") is None
        assert r.add(("ch", 1), 0, 3, b"a") is None
        assert r.add(("ch", 1), 1, 3, b"b") == b"abc"

    def test_duplicate_fragment_ignored(self):
        r = Reassembler()
        r.add(("ch", 1), 0, 2, b"a")
        r.add(("ch", 1), 0, 2, b"DUP")
        assert r.add(("ch", 1), 1, 2, b"b") == b"ab"

    def test_interleaved_messages(self):
        r = Reassembler()
        r.add(("ch", 1), 0, 2, b"1a")
        r.add(("ch", 2), 0, 2, b"2a")
        assert r.add(("ch", 2), 1, 2, b"2b") == b"2a2b"
        assert r.add(("ch", 1), 1, 2, b"1b") == b"1a1b"

    def test_inconsistent_total_rejected(self):
        r = Reassembler()
        r.add(("ch", 1), 0, 3, b"a")
        with pytest.raises(NetworkError):
            r.add(("ch", 1), 1, 4, b"b")

    def test_index_out_of_range_rejected(self):
        r = Reassembler()
        with pytest.raises(NetworkError):
            r.add(("ch", 1), 5, 3, b"x")

    def test_forget_drops_channel_state(self):
        r = Reassembler()
        r.add((7, 1), 0, 2, b"a")
        r.add((8, 1), 0, 2, b"a")
        r.forget((7,))
        assert r.pending() == 1


def test_frame_wire_size_includes_header():
    frame = Frame(kind="data", src_site=0, dst_site=1, payload=b"x" * 10)
    assert frame.wire_size == FRAME_HEADER_BYTES + 10
