"""Failure-injection tests: virtual synchrony under crashes.

These exercise the guarantees §2.4 promises: all operational processes
observe the same events in the same order — message deliveries *and*
failures — and a multicast is delivered in the view it was sent in, or
nowhere.
"""

import pytest

from repro import ALL, IsisCluster, IsisConfig, LanConfig
from repro.errors import BroadcastFailed


def build_group(system, sites, name="grp", entry=16):
    """One member per listed site; returns [(process, isis)], deliveries."""
    deliveries = {site: [] for site in sites}
    procs = []
    for site in sites:
        proc, isis = system.spawn(site, f"m{site}")
        proc.bind(entry, lambda msg, s=site: deliveries[s].append(msg))
        procs.append((proc, isis))

    def create_main():
        yield procs[0][1].pg_create(name)

    procs[0][0].spawn(create_main(), "create")
    system.run_for(3.0)
    for i, site in enumerate(sites[1:], start=1):
        def join_main(isis=procs[i][1]):
            gid = yield isis.pg_lookup(name)
            yield isis.pg_join(gid)

        procs[i][0].spawn(join_main(), f"join{site}")
        system.run_for(20.0)
    return procs, deliveries


class TestMemberFailure:
    def test_process_death_shrinks_view_everywhere(self):
        system = IsisCluster(n_sites=3, seed=1)
        procs, _ = build_group(system, [0, 1, 2])
        views = []

        def watch():
            gid = yield procs[0][1].pg_lookup("grp")
            yield procs[0][1].pg_monitor(gid, lambda v: views.append(v))

        procs[0][0].spawn(watch(), "watch")
        system.run_for(5.0)
        procs[1][0].kill()  # local death detection, no timeout needed
        system.run_for(20.0)
        assert len(views[-1].members) == 2
        assert views[-1].rank_of(procs[1][0].address) == -1

    def test_site_crash_removes_members_via_timeout(self):
        system = IsisCluster(n_sites=3, seed=2)
        procs, _ = build_group(system, [0, 1, 2])
        views = []

        def watch():
            gid = yield procs[0][1].pg_lookup("grp")
            yield procs[0][1].pg_monitor(gid, lambda v: views.append(v))

        procs[0][0].spawn(watch(), "watch")
        system.run_for(5.0)
        system.crash_site(2)
        system.run_for(60.0)  # heartbeat timeout + view change
        assert views, "no view change observed after site crash"
        assert len(views[-1].members) == 2

    def test_caller_gets_error_when_all_respondents_fail(self):
        system = IsisCluster(n_sites=3, seed=3)
        procs, _ = build_group(system, [0, 1])
        # Members never reply at entry 20 (they just swallow the message).
        for proc, _ in procs:
            proc.bind(20, lambda msg: None)
        caller, caller_isis = system.spawn(2, "caller")

        def call_main():
            gid = yield caller_isis.pg_lookup("grp")
            try:
                yield caller_isis.cbcast(gid, 20, nwant=1, q="x")
            except BroadcastFailed:
                return "failed"
            return "unexpected"

        task = caller.spawn(call_main(), "call")
        system.run_for(10.0)  # let the call dispatch
        system.crash_site(0)
        system.crash_site(1)
        system.run_for(120.0)
        assert task.value == "failed"

    def test_coordinator_crash_next_oldest_takes_over(self):
        system = IsisCluster(n_sites=3, seed=4)
        procs, deliveries = build_group(system, [0, 1, 2])
        system.run_for(5.0)
        # Site 0 hosts the oldest member (group coordinator). Kill it.
        system.crash_site(0)
        system.run_for(60.0)
        # The group still works: member at site 1 multicasts.
        def send_main():
            gid = yield procs[1][1].pg_lookup("grp")
            yield procs[1][1].cbcast(gid, 16, q="after")

        procs[1][0].spawn(send_main(), "send")
        system.run_for(20.0)
        assert [m["q"] for m in deliveries[1]] == ["after"]
        assert [m["q"] for m in deliveries[2]] == ["after"]


class TestViewSynchrony:
    def test_same_deliveries_between_same_views(self):
        """Survivors deliver identical message sets despite sender crash."""
        system = IsisCluster(n_sites=4, seed=5)
        procs, deliveries = build_group(system, [0, 1, 2, 3])
        system.run_for(5.0)

        def blast(idx, count):
            gid = yield procs[idx][1].pg_lookup("grp")
            for i in range(count):
                yield procs[idx][1].cbcast(gid, 16, tag=f"s{idx}.{i}")

        for idx in (1, 2, 3):
            procs[idx][0].spawn(blast(idx, 10), f"blast{idx}")
        # Crash the sender's site mid-stream.
        system.run_for(0.5)
        system.crash_site(1)
        system.run_for(120.0)
        tags2 = [m["tag"] for m in deliveries[2]]
        tags3 = [m["tag"] for m in deliveries[3]]
        assert set(tags2) == set(tags3), "survivors delivered different sets"
        # Per-sender FIFO within the survivors' deliveries.
        for sender in ("s2", "s3"):
            seq2 = [t for t in tags2 if t.startswith(sender)]
            assert seq2 == sorted(seq2, key=lambda t: int(t.split(".")[1]))

    def test_abcast_order_identical_despite_crash(self):
        system = IsisCluster(n_sites=3, seed=6)
        procs, deliveries = build_group(system, [0, 1, 2])
        system.run_for(5.0)

        def blast(idx):
            gid = yield procs[idx][1].pg_lookup("grp")
            for i in range(6):
                yield procs[idx][1].abcast(gid, 16, tag=f"s{idx}.{i}")

        procs[1][0].spawn(blast(1), "blast1")
        procs[2][0].spawn(blast(2), "blast2")
        system.run_for(0.4)
        system.crash_site(1)
        system.run_for(120.0)
        tags0 = [m["tag"] for m in deliveries[0]]
        tags2 = [m["tag"] for m in deliveries[2]]
        assert tags0 == tags2, "ABCAST order diverged between survivors"

    def test_excluded_live_site_self_destructs(self):
        """§3.7: a live site excluded from the view undergoes recovery."""
        system = IsisCluster(n_sites=3, seed=7)
        system.run_for(5.0)
        # Partition site 2 away long enough for the others to expel it.
        system.cluster.lan.partition([[0, 1], [2]])
        system.run_for(60.0)
        system.cluster.lan.heal()
        system.run_for(30.0)
        assert not system.site(2).up, "excluded site should have crashed"
        assert system.sim.trace.value("sv.self_destructs") >= 1


class TestPartitionStall:
    def test_minority_partition_stalls_but_heals(self):
        """§2.1: partitions are not tolerated — progress stalls until healed.

        The group coordinator is in the majority partition; a member in
        the minority is eventually expelled.  The paper's stated policy is
        that parts of the system 'hang until communication is restored' —
        we verify the minority member makes no progress mid-partition.
        """
        system = IsisCluster(n_sites=3, seed=8)
        procs, deliveries = build_group(system, [0, 1, 2])
        system.run_for(5.0)
        system.cluster.lan.partition([[0, 1], [2]])

        def send_main():
            gid = yield procs[0][1].pg_lookup("grp")
            yield procs[0][1].cbcast(gid, 16, q="during-partition")

        procs[0][0].spawn(send_main(), "send")
        system.run_for(10.0)
        # The minority member cannot receive it.
        assert not any(
            m["q"] == "during-partition" for m in deliveries[2]
        )


class TestBatchedVirtualSynchrony:
    """§2.4 guarantees must survive wire-level envelope batching.

    With ``batch_window > 0`` envelopes coalesce into ``g.batch`` wire
    messages and sit in a sender-side buffer for up to the window; a
    flush must still produce gap-free, identically-ordered deliveries at
    every survivor.
    """

    CONFIG = dict(batch_window=0.010, piggyback_stability=True,
                  stab_announce_every=8)

    def _system(self, n_sites, seed):
        return IsisCluster(n_sites=n_sites, seed=seed,
                           isis_config=IsisConfig(**self.CONFIG))

    def test_same_deliveries_between_same_views(self):
        """Gap-free delivery across a flush: survivors agree on the set."""
        system = self._system(4, seed=105)
        procs, deliveries = build_group(system, [0, 1, 2, 3])
        system.run_for(5.0)

        def blast(idx, count):
            gid = yield procs[idx][1].pg_lookup("grp")
            for i in range(count):
                yield procs[idx][1].cbcast(gid, 16, tag=f"s{idx}.{i}")

        for idx in (1, 2, 3):
            procs[idx][0].spawn(blast(idx, 10), f"blast{idx}")
        # Crash the sender's site mid-stream, with batches in flight.
        system.run_for(0.5)
        system.crash_site(1)
        system.run_for(120.0)
        assert system.sim.trace.value("batch.sent") > 0, \
            "workload never exercised the batching path"
        tags2 = [m["tag"] for m in deliveries[2]]
        tags3 = [m["tag"] for m in deliveries[3]]
        assert set(tags2) == set(tags3), "survivors delivered different sets"
        # Causal order: per-sender FIFO despite coalescing and refill.
        for site_tags in (tags2, tags3):
            for sender in ("s2", "s3"):
                seq = [t for t in site_tags if t.startswith(sender)]
                assert seq == sorted(seq, key=lambda t: int(t.split(".")[1]))

    def test_abcast_order_identical_despite_crash(self):
        system = self._system(3, seed=106)
        procs, deliveries = build_group(system, [0, 1, 2])
        system.run_for(5.0)

        def blast(idx):
            gid = yield procs[idx][1].pg_lookup("grp")
            for i in range(6):
                yield procs[idx][1].abcast(gid, 16, tag=f"s{idx}.{i}")

        procs[1][0].spawn(blast(1), "blast1")
        procs[2][0].spawn(blast(2), "blast2")
        system.run_for(0.4)
        system.crash_site(1)
        system.run_for(120.0)
        tags0 = [m["tag"] for m in deliveries[0]]
        tags2 = [m["tag"] for m in deliveries[2]]
        assert tags0 == tags2, "ABCAST order diverged between survivors"

    def test_join_mid_stream_sees_consistent_cut(self):
        """A member joining under batched traffic misses nothing after
        its first view: the flush drains coalescing buffers at wedge."""
        system = self._system(3, seed=107)
        procs, deliveries = build_group(system, [0, 1])
        system.run_for(5.0)
        stop = {"done": False}

        def blast(idx):
            gid = yield procs[idx][1].pg_lookup("grp")
            i = 0
            while not stop["done"]:
                yield procs[idx][1].cbcast(gid, 16, tag=f"s{idx}.{i}")
                i += 1

        for idx in (0, 1):
            procs[idx][0].spawn(blast(idx), f"blast{idx}")
        late, late_isis = system.spawn(2, "late")
        late_delivered = []
        late.bind(16, lambda msg: late_delivered.append(msg["tag"]))

        def join_late():
            gid = yield late_isis.pg_lookup("grp")
            yield late_isis.pg_join(gid)

        system.run_for(1.0)
        late.spawn(join_late(), "join")
        system.run_for(30.0)
        stop["done"] = True
        system.run_for(20.0)
        # Gap-free delivery across the flush: the joiner's stream per
        # sender is one contiguous run overlapping the old members' run
        # (no message batched at wedge time fell into the gap).
        old_tags = [m["tag"] for m in deliveries[0]]
        assert late_delivered, "joiner never received batched traffic"
        for sender in ("s0", "s1"):
            seq = [int(t.split(".")[1]) for t in late_delivered
                   if t.startswith(sender)]
            full = [int(t.split(".")[1]) for t in old_tags
                    if t.startswith(sender)]
            assert full == list(range(full[0], full[0] + len(full)))
            assert seq, f"joiner received nothing from {sender}"
            assert seq == list(range(seq[0], seq[0] + len(seq)))
            assert seq[0] <= full[-1], "joiner's run does not overlap"

    def test_stability_trims_without_fallback_rounds(self):
        """Piggybacked have-vectors GC the buffers while traffic flows."""
        system = self._system(3, seed=108)
        procs, _ = build_group(system, [0, 1, 2])
        system.run_for(5.0)

        def blast(idx):
            gid = yield procs[idx][1].pg_lookup("grp")
            for i in range(40):
                yield procs[idx][1].cbcast(gid, 16, tag=f"s{idx}.{i}")

        for idx in range(3):
            procs[idx][0].spawn(blast(idx), f"blast{idx}")
        system.run_for(60.0)
        assert system.sim.trace.value("stability.piggyback_trimmed") > 0
        for site in range(3):
            assert system.kernel(site).stats()["buffered_messages"] == 0


class TestTotalGroupFailure:
    def test_all_members_fail_caller_unblocked(self):
        system = IsisCluster(n_sites=4, seed=9)
        procs, _ = build_group(system, [0, 1])
        for proc, isis in procs:
            def slow_answer(msg, isis=isis):
                yield isis.reply(msg, late=True)

            proc.bind(21, slow_answer)
        caller, caller_isis = system.spawn(3, "caller")

        def call_main():
            gid = yield caller_isis.pg_lookup("grp")
            try:
                replies = yield caller_isis.cbcast(gid, 21, nwant=2, q="x")
                return len(replies)
            except BroadcastFailed as err:
                return f"failed:{len(err.replies)}"

        system.crash_site(0)
        system.crash_site(1)
        task = caller.spawn(call_main(), "call")
        system.run_for(120.0)
        # Either the call failed cleanly or got no stuck state; never hangs.
        assert task.done
