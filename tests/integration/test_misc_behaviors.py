"""Integration coverage for remaining §3/§5 behaviours: automatic member
restart (rexec), the flush primitive, pg_kill, news failover."""

import pytest

from repro import IsisCluster
from repro.apps.twenty_questions import (
    TwentyQuestionsClient,
    TwentyQuestionsServer,
    register_program,
)
from repro.sim import sleep
from repro.tools import NewsClient, NewsServer
from repro.tools.rexec import install_rexec


class TestAutoRestart:
    def test_oldest_member_respawns_missing_members(self):
        """§5 step 3: the oldest member restarts members via rexec."""
        system = IsisCluster(n_sites=4, seed=81)
        install_rexec(system)
        register_program(system.cluster, nmembers=3, auto_restart=True)
        creator = TwentyQuestionsServer(
            system.site(0).spawn_process("tq0"), nmembers=3,
            auto_restart=True)
        creator.process.spawn(creator.start(mode="create"), "start")
        system.run_for(3.0)
        second = TwentyQuestionsServer(
            system.site(1).spawn_process("tq1"), nmembers=3,
            auto_restart=True)
        second.process.spawn(second.start(mode="join"), "join")
        system.run_for(25.0)
        third = TwentyQuestionsServer(
            system.site(2).spawn_process("tq2"), nmembers=3,
            auto_restart=True)
        third.process.spawn(third.start(mode="join"), "join")
        system.run_for(25.0)
        # Kill one member: the oldest spawns a replacement elsewhere.
        second.process.kill()
        system.run_for(120.0)
        assert system.sim.trace.value("tool.rexec_spawns") >= 1
        view_box = {}

        def check():
            gid = yield creator.isis.pg_lookup("twenty")
            view_box["view"] = yield creator.isis.pg_view(gid)

        creator.process.spawn(check(), "check")
        system.run_for(10.0)
        assert len(view_box["view"].members) == 3


class TestFlushPrimitive:
    def test_flush_waits_for_outstanding_sends(self):
        """§3.2 note: flush blocks until async broadcasts are stable."""
        system = IsisCluster(n_sites=2, seed=82)
        got = []
        sender, isis0 = system.spawn(0, "sender")
        receiver, isis1 = system.spawn(1, "receiver")
        receiver.bind(16, lambda msg: got.append(msg["n"]))
        done_at = {}

        def main():
            gid = yield isis0.pg_create("flushy")
            # (receiver joins below)
            yield sleep(system.sim, 30.0)
            for i in range(5):
                yield isis0.cbcast(gid, 16, n=i)
            yield isis0.flush()
            done_at["t"] = system.now
            done_at["delivered"] = len(got)

        def join():
            gid = yield isis1.pg_lookup("flushy")
            yield isis1.pg_join(gid)

        sender.spawn(main(), "main")
        system.run_for(3.0)
        receiver.spawn(join(), "join")
        system.run_for(120.0)
        # After flush resolved, every send had been acked by the peer
        # site's kernel; with the intra-site hop the deliveries complete.
        assert done_at["t"] > 30.0
        assert len(got) == 5


class TestPgKill:
    def test_kill_terminates_all_members(self):
        system = IsisCluster(n_sites=3, seed=83)
        procs = []
        creator, isis0 = system.spawn(0, "m0")
        procs.append(creator)

        def create():
            yield isis0.pg_create("doomed")

        creator.spawn(create(), "create")
        system.run_for(3.0)
        for site in (1, 2):
            proc, isis = system.spawn(site, f"m{site}")
            procs.append(proc)

            def join(isis=isis):
                gid = yield isis.pg_lookup("doomed")
                yield isis.pg_join(gid)

            proc.spawn(join(), f"join{site}")
            system.run_for(25.0)
        killer, killer_isis = system.spawn(0, "killer")

        def kill():
            gid = yield killer_isis.pg_lookup("doomed")
            yield killer_isis.pg_kill(gid)

        killer.spawn(kill(), "kill")
        system.run_for(60.0)
        assert all(not p.alive for p in procs)
        assert system.sim.trace.value("pg_kill.signals") == 3


class TestNewsFailover:
    def test_surviving_server_keeps_delivering(self):
        system = IsisCluster(n_sites=3, seed=84)
        # Two news servers.
        p0, isis0 = system.spawn(0, "news0")
        NewsServer(isis0)
        gid_box = {}

        def create():
            gid_box["gid"] = yield isis0.pg_create("@news")

        p0.spawn(create(), "create")
        system.run_for(3.0)
        p1, isis1 = system.spawn(1, "news1")
        NewsServer(isis1)

        def join():
            yield isis1.pg_join(gid_box["gid"])

        p1.spawn(join(), "join")
        system.run_for(25.0)
        # A subscriber at site 2 (no local server: the oldest serves it).
        reader, isis_r = system.spawn(2, "reader")
        client = NewsClient(isis_r, gid_box["gid"])
        got = []

        def subscribe():
            yield client.subscribe("ops", lambda m: got.append(m["body"]))

        reader.spawn(subscribe(), "sub")
        system.run_for(25.0)

        def post(body):
            def main():
                pub = NewsClient(isis_r, gid_box["gid"])
                yield pub.post("ops", body)
            return main()

        reader.spawn(post("before-crash"), "post1")
        system.run_for(30.0)
        system.crash_site(0)  # the oldest news server dies
        system.run_for(60.0)
        reader.spawn(post("after-crash"), "post2")
        system.run_for(60.0)
        assert "before-crash" in got
        assert "after-crash" in got
        # No duplicates despite server handover (seq dedupe).
        assert got.count("before-crash") == 1
