"""Failure injection for sequencer-mode ABCAST: killing the token site.

The token site is the single point deciding total order; its failure is
the protocol's hardest case.  At the moment of the crash there are
stamped-but-undelivered ABCASTs (stamps in flight to some survivors) and
unstamped ABCASTs (data disseminated, never reached the token or queued
in its stamp batch).  The flush must settle both classes identically at
every survivor: the stamped prefix from the reports, then the
deterministic unstamped tail — no losses, no duplicates, no divergence.
"""

import pytest

from repro import IsisCluster, IsisConfig


def _build(seed, n_sites=4, batch_window=0.010, mode="sequencer"):
    config = IsisConfig(abcast_mode=mode, batch_window=batch_window)
    system = IsisCluster(n_sites=n_sites, seed=seed, isis_config=config)
    deliveries = {s: [] for s in range(n_sites)}
    members = []
    for site in range(n_sites):
        proc, isis = system.spawn(site, f"m{site}")
        proc.bind(16, lambda msg, s=site: deliveries[s].append(msg["tag"]))
        members.append((proc, isis))

    def create():
        yield members[0][1].pg_create("seq")

    members[0][0].spawn(create(), "create")
    system.run_for(3.0)
    for i in range(1, n_sites):
        def join(isis=members[i][1]):
            gid = yield isis.pg_lookup("seq")
            yield isis.pg_join(gid)

        members[i][0].spawn(join(), f"join{i}")
        system.run_for(20.0)
    return system, members, deliveries


def _stream_abcasts(members, sent, count=12):
    for idx, (proc, isis) in enumerate(members):
        def blast(isis=isis, idx=idx):
            gid = yield isis.pg_lookup("seq")
            for i in range(count):
                yield isis.abcast(gid, 16, tag=f"{idx}:{i}")
                sent[idx] += 1

        proc.spawn(blast(), f"blast{idx}")


class TestTokenSiteFailure:
    @pytest.mark.parametrize("crash_after", [0.3, 0.6, 1.2])
    def test_survivors_agree_after_token_kill(self, crash_after):
        """Kill the token mid-stream; survivors converge on one order."""
        system, members, deliveries = _build(seed=7)
        sent = {idx: 0 for idx in range(4)}
        _stream_abcasts(members, sent)
        system.run_for(crash_after)
        # The token is the lowest-ranked (oldest) member's site: site 0.
        system.crash_site(0)
        system.run_for(300.0)
        survivors = [1, 2, 3]
        orders = [deliveries[s] for s in survivors]
        # Mid-stream state actually existed (the crash hit live traffic).
        assert all(len(order) > 0 for order in orders)
        # Identical delivery order at every survivor across the cut.
        assert orders[0] == orders[1] == orders[2]
        # No duplicated ABCASTs.
        for order in orders:
            assert len(order) == len(set(order))
        # No lost ABCASTs: everything a survivor sent was delivered at
        # every survivor (the token site's own in-flight sends may be
        # dropped atomically — delivered nowhere — which is allowed).
        survivor_sent = {f"{i}:{n}" for i in survivors
                         for n in range(sent[i])}
        for order in orders:
            assert survivor_sent <= set(order)
        # The token moved to the new lowest-ranked member's site.
        assert system.sim.trace.value("abcast.token_handoffs") == 1

    def test_token_kill_without_stamp_batching(self):
        """Same guarantees with one g.abs per ABCAST (no batching)."""
        system, members, deliveries = _build(seed=11, batch_window=0.0)
        sent = {idx: 0 for idx in range(4)}
        _stream_abcasts(members, sent)
        system.run_for(0.5)
        system.crash_site(0)
        system.run_for(300.0)
        survivors = [1, 2, 3]
        orders = [deliveries[s] for s in survivors]
        assert orders[0] == orders[1] == orders[2]
        survivor_sent = {f"{i}:{n}" for i in survivors
                         for n in range(sent[i])}
        for order in orders:
            assert len(order) == len(set(order))
            assert survivor_sent <= set(order)

    def test_non_token_site_failure_keeps_streaming(self):
        """Losing a non-token member must not disturb the token's order."""
        system, members, deliveries = _build(seed=13)
        sent = {idx: 0 for idx in range(4)}
        _stream_abcasts(members, sent)
        system.run_for(0.5)
        system.crash_site(2)
        system.run_for(300.0)
        survivors = [0, 1, 3]
        orders = [deliveries[s] for s in survivors]
        assert orders[0] == orders[1] == orders[2]
        survivor_sent = {f"{i}:{n}" for i in survivors
                         for n in range(sent[i])}
        for order in orders:
            assert len(order) == len(set(order))
            assert survivor_sent <= set(order)
        # Token never moved: site 0's oldest member survived.
        assert system.sim.trace.value("abcast.token_handoffs") == 0

    def test_sequencer_group_rejoins_and_continues(self):
        """After the token dies, new ABCASTs still flow in the new view."""
        system, members, deliveries = _build(seed=17)
        sent = {idx: 0 for idx in range(4)}
        _stream_abcasts(members, sent, count=5)
        system.run_for(60.0)
        system.crash_site(0)
        system.run_for(60.0)

        def late(isis=members[1][1]):
            gid = yield isis.pg_lookup("seq")
            for i in range(5):
                yield isis.abcast(gid, 16, tag=f"late:{i}")

        members[1][0].spawn(late(), "late")
        system.run_for(120.0)
        survivors = [1, 2, 3]
        orders = [deliveries[s] for s in survivors]
        assert orders[0] == orders[1] == orders[2]
        assert {f"late:{i}" for i in range(5)} <= set(orders[0])
