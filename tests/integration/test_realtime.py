"""Tests for the §3.11 real-time facility (clock sync, scheduling,
sensor reconciliation)."""

import pytest

from repro import IsisCluster
from repro.tools.realtime import (
    RealTimeTool,
    SiteClock,
    install_clocks,
)


class TestSiteClock:
    def test_offset_and_drift_shape_raw_time(self):
        system = IsisCluster(n_sites=1, seed=90)
        clock = SiteClock(system.sim, offset=0.25, drift=0.001)
        system.run_for(100.0)
        assert clock.raw() == pytest.approx(100.0 * 1.001 + 0.25)

    def test_correction_applies(self):
        system = IsisCluster(n_sites=1, seed=91)
        clock = SiteClock(system.sim, offset=1.0)
        clock.correction = -1.0
        assert clock.now() == pytest.approx(0.0)


class TestClockSync:
    def test_slaves_converge_to_master(self):
        system = IsisCluster(n_sites=3, seed=92)
        clocks = install_clocks(system, max_offset=0.5, sync_interval=2.0)
        before = [abs(clocks[s][0].error() - clocks[0][0].error())
                  for s in (1, 2)]
        system.run_for(60.0)
        # Slaves discipline themselves to the master (site 0): the
        # *relative* error among sites shrinks well below the raw skew.
        for s in (1, 2):
            relative = abs(clocks[s][0].now() - clocks[0][0].now())
            assert relative < 0.05, f"site {s} still {relative:.3f}s off"
        assert system.sim.trace.value("tool.rt_syncs") > 0

    def test_new_master_after_coordinator_crash(self):
        system = IsisCluster(n_sites=3, seed=93)
        clocks = install_clocks(system, max_offset=0.4, sync_interval=2.0)
        system.run_for(30.0)
        system.crash_site(0)
        system.run_for(60.0)
        # Site 1 is the new master; site 2 tracks it.
        relative = abs(clocks[2][0].now() - clocks[1][0].now())
        assert relative < 0.05


class TestScheduling:
    def test_actions_fire_near_global_time_on_all_sites(self):
        """'scheduling actions at predetermined global times'."""
        system = IsisCluster(n_sites=3, seed=94)
        clocks = install_clocks(system, max_offset=0.3, sync_interval=2.0)
        system.run_for(30.0)  # let the clocks discipline first
        fired = {}
        tools = {}
        for site in range(3):
            proc, isis = system.spawn(site, f"rt{site}")
            tools[site] = RealTimeTool(isis, clocks[site][0])
        target = tools[0].now() + 20.0
        for site in range(3):
            tools[site].schedule_at(
                target, lambda site=site: fired.update(
                    {site: system.sim.now}))
        system.run_for(60.0)
        assert set(fired) == {0, 1, 2}
        times = sorted(fired.values())
        # All three fire within a small window despite skewed clocks.
        assert times[-1] - times[0] < 0.2

    def test_schedule_in_the_past_fires_immediately(self):
        system = IsisCluster(n_sites=1, seed=95)
        clocks = install_clocks(system)
        proc, isis = system.spawn(0, "rt")
        tool = RealTimeTool(isis, clocks[0][0])
        fired = []
        tool.schedule_at(tool.now() - 5.0, lambda: fired.append(True))
        system.run_for(1.0)
        assert fired == [True]


class TestSensorDatabase:
    def _deploy(self, system, clocks):
        tools = []
        gid_box = {}
        p0, isis0 = system.spawn(0, "s0")
        t0 = RealTimeTool(isis0, clocks[0][0], gid=None)

        def create():
            gid_box["gid"] = yield isis0.pg_create("sensors")

        p0.spawn(create(), "create")
        system.run_for(3.0)
        t0.gid = gid_box["gid"]
        tools.append(t0)
        for site in (1, 2):
            proc, isis = system.spawn(site, f"s{site}")
            tool = RealTimeTool(isis, clocks[site][0], gid=gid_box["gid"])
            tools.append(tool)

            def join(isis=isis):
                yield isis.pg_join(gid_box["gid"])

            proc.spawn(join(), f"join{site}")
            system.run_for(20.0)
        return tools

    def test_readings_replicate_with_timestamps(self):
        system = IsisCluster(n_sites=3, seed=96)
        clocks = install_clocks(system, sync_interval=2.0)
        tools = self._deploy(system, clocks)

        def post():
            yield tools[0].post_reading("temp", 21.5)
            yield tools[0].post_reading("temp", 22.0)

        tools[0].isis.process.spawn(post(), "post")
        system.run_for(15.0)
        for tool in tools:
            readings = tool.read_interval("temp", 0.0, 10_000.0)
            assert [v for _, v in readings] == [21.5, 22.0]

    def test_reconcile_takes_median(self):
        """'reconciliation of sensor readings' — robust to one outlier."""
        system = IsisCluster(n_sites=3, seed=97)
        clocks = install_clocks(system, sync_interval=2.0)
        tools = self._deploy(system, clocks)

        def post(idx, value):
            def main():
                yield tools[idx].post_reading("pressure", value)
            return main()

        # Two good instruments and one broken one.
        tools[0].isis.process.spawn(post(0, 101.2), "p0")
        tools[1].isis.process.spawn(post(1, 101.4), "p1")
        tools[2].isis.process.spawn(post(2, 999.9), "p2")
        system.run_for(20.0)
        value = tools[0].reconcile("pressure", 0.0, 10_000.0)
        assert value == pytest.approx(101.4)

    def test_interval_filtering(self):
        system = IsisCluster(n_sites=1, seed=98)
        clocks = install_clocks(system)
        proc, isis = system.spawn(0, "s")
        tool = RealTimeTool(isis, clocks[0][0])
        tool._store("flow", 10.0, 1)
        tool._store("flow", 20.0, 2)
        tool._store("flow", 30.0, 3)
        assert [v for _, v in tool.read_interval("flow", 15.0, 30.0)] == [2]
        assert tool.reconcile("flow", 0.0, 50.0) == 2
        assert tool.reconcile("flow", 40.0, 50.0) is None
