"""Join snapshot must sit exactly on the view boundary.

Regression test: the application applies a dispatched delivery only
after the intra-site CPU hand-off, so a snapshot encoded synchronously
at view install missed any delivery the flush cut had already counted
as pre-view — the joiner's transferred state lacked it and the message
was never resent (it was old-view traffic).  Deterministically lost
exactly one message per join that landed while a delivery was in
flight.  `_send_state` now routes the segment encode through the same
cpu-submit + intra-delay path as the deliveries themselves.
"""

import json

import pytest

from repro import IsisCluster, IsisConfig

ENGINE_GRID = [
    ("two_phase", True),
    ("two_phase", False),
    ("sequencer", True),
    ("sequencer", False),
]


def _attach(system, site, pname, counts):
    process, isis = system.spawn(site, pname)
    log = counts.setdefault(pname, [])
    process.xfer_segments["app"] = (
        lambda log=log: [json.dumps(log).encode()],
        lambda blocks, log=log: (
            log.clear(), log.extend(json.loads(blocks[0])),
        ) if blocks else None,
    )
    process.bind(16, lambda msg, log=log: log.append(msg["tag"]))
    return process, isis


@pytest.mark.parametrize("mode,fast", ENGINE_GRID)
@pytest.mark.parametrize("kind", ["abcast", "cbcast"])
def test_concurrent_joins_under_load_lose_nothing(mode, fast, kind):
    config = IsisConfig(abcast_mode=mode, fast_flush=fast)
    system = IsisCluster(n_sites=4, seed=2, isis_config=config)
    counts = {}
    handles = {s: _attach(system, s, f"m{s}", counts) for s in range(4)}

    def creator(isis):
        gid = yield isis.pg_create("g")
        for i in range(20):
            yield isis.bcast(gid, 16, tag=f"a{i}", kind=kind)

    def joiner(isis, start):
        gid = yield isis.pg_lookup("g")
        yield isis.pg_join(gid)
        for i in range(start, start + 10):
            yield isis.bcast(gid, 16, tag=f"b{i}", kind=kind)

    handles[0][0].spawn(creator(handles[0][1]), "creator")
    for site in (1, 2, 3):
        handles[site][0].spawn(
            joiner(handles[site][1], 10 * site), "joiner")
    system.run_for(80.0)

    reference = sorted(counts["m0"])
    assert len(reference) == 50
    for name in ("m1", "m2", "m3"):
        missing = [t for t in reference if t not in counts[name]]
        assert not missing, (
            f"{name} never received {missing}: the join snapshot was "
            f"cut off the view boundary")
        assert sorted(counts[name]) == reference
