"""Differential smoke test: same kernel, two drivers, same results.

The same 4-site CBCAST+ABCAST workload runs once on the deterministic
simulator (:class:`repro.core.bootstrap.IsisCluster`) and once on the
asyncio/UDP driver (:class:`repro.runtime.asyncio_driver.AsyncioCluster`,
real localhost sockets, wall-clock timers).  Virtual synchrony promises
that the *sets* of delivered messages and the final views agree even
though timing — and therefore delivery *order* of concurrent CBCASTs —
legitimately differs (§2.4: only ABCAST imposes a total order, and only
within each run).
"""

from __future__ import annotations

import socket

import pytest

from repro import IsisCluster
from repro.runtime.asyncio_driver import AsyncioCluster

SINK = 17
N_SITES = 4
PER_SENDER = 3  # CBCASTs and ABCASTs per member


def _sockets_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


realnet = pytest.mark.skipif(
    not _sockets_available(), reason="localhost sockets unavailable")


class _SimDriver:
    """Adapter: drive the simulated cluster in simulated seconds."""

    def __init__(self, seed: int = 0):
        self.cluster = IsisCluster(n_sites=N_SITES, seed=seed)

    def spawn(self, site_id: int, name: str):
        return self.cluster.spawn(site_id, name)

    def kernel(self, site_id: int):
        return self.cluster.kernel(site_id)

    def wait_until(self, predicate, timeout: float) -> bool:
        deadline = self.cluster.now + timeout
        while not predicate() and self.cluster.now < deadline:
            self.cluster.run_for(0.25)
        return predicate()

    def settle(self, duration: float) -> None:
        self.cluster.run_for(duration)

    def shutdown(self) -> None:
        pass


class _AsyncioDriver:
    """Adapter: drive the real-socket cluster in wall-clock seconds."""

    #: Wall timeouts are tighter than simulated ones: scale them down.
    TIME_SCALE = 0.2

    def __init__(self, seed: int = 0, udp_config=None):
        self.cluster = AsyncioCluster(n_sites=N_SITES, seed=seed,
                                      udp_config=udp_config)

    def spawn(self, site_id: int, name: str):
        return self.cluster.spawn(site_id, name)

    def kernel(self, site_id: int):
        return self.cluster.kernel(site_id)

    def wait_until(self, predicate, timeout: float) -> bool:
        return self.cluster.run_until(
            predicate, timeout=max(5.0, timeout * self.TIME_SCALE))

    def settle(self, duration: float) -> None:
        self.cluster.run_for(min(0.5, duration * self.TIME_SCALE))

    def shutdown(self) -> None:
        self.cluster.shutdown()


def run_workload(driver):
    """Create a group, join all sites, multicast from every member.

    Returns ``(delivered, abcast_orders, final_views)``:
    per-site delivered multisets, per-site ABCAST delivery order, and
    per-site final view membership.
    """
    delivered = {sid: [] for sid in range(N_SITES)}
    members = []

    class Member:
        def __init__(self, sid):
            self.sid = sid
            self.process, self.isis = driver.spawn(sid, f"m{sid}")
            self.process.bind(SINK, self._on_sink)
            self.gid = None

        def _on_sink(self, msg):
            delivered[self.sid].append((msg["origin"], msg["i"], msg["k"]))

    creator = Member(0)
    members.append(creator)

    def create():
        creator.gid = yield creator.isis.pg_create("diff")

    task = creator.process.spawn(create(), "create")
    assert driver.wait_until(lambda: task.done, 10.0), "create stalled"

    join_tasks = []
    for sid in range(1, N_SITES):
        member = Member(sid)
        members.append(member)

        def join(member=member):
            gid = yield member.isis.pg_lookup("diff")
            yield member.isis.pg_join(gid)
            member.gid = gid

        join_tasks.append(member.process.spawn(join(), f"join{sid}"))
    assert driver.wait_until(lambda: all(t.done for t in join_tasks), 60.0), \
        "joins stalled"

    gid = creator.gid
    send_tasks = []
    for member in members:
        def send(member=member):
            for i in range(PER_SENDER):
                yield member.isis.cbcast(
                    gid, SINK, nwant=0, origin=member.sid, i=i, k="c")
            for i in range(PER_SENDER):
                yield member.isis.abcast(
                    gid, SINK, nwant=0, origin=member.sid, i=i, k="a")
        send_tasks.append(member.process.spawn(send(), f"send{member.sid}"))

    expected = N_SITES * PER_SENDER * 2
    done = driver.wait_until(
        lambda: (all(t.done for t in send_tasks)
                 and all(len(delivered[s]) >= expected
                         for s in range(N_SITES))),
        120.0)
    assert done, f"deliveries stalled: {[len(delivered[s]) for s in range(N_SITES)]}"
    driver.settle(2.0)  # let stability/trailing traffic quiesce

    abcast_orders = {
        sid: [d for d in delivered[sid] if d[2] == "a"]
        for sid in range(N_SITES)
    }
    final_views = {}
    for sid in range(N_SITES):
        engine = driver.kernel(sid).engines.get(gid.process())
        assert engine is not None and engine.view is not None
        final_views[sid] = sorted(str(m) for m in engine.view.members)
    return delivered, abcast_orders, final_views


def check_internal_consistency(delivered, abcast_orders, final_views):
    """Per-driver VS invariants: same sets, same ABCAST order, same view."""
    reference = sorted(delivered[0])
    assert len(reference) == N_SITES * PER_SENDER * 2
    for sid in range(1, N_SITES):
        assert sorted(delivered[sid]) == reference, \
            f"site {sid} delivered a different set"
        assert abcast_orders[sid] == abcast_orders[0], \
            f"site {sid} disagrees on ABCAST total order"
        assert final_views[sid] == final_views[0], \
            f"site {sid} ends in a different view"


@realnet
def test_sim_and_asyncio_drivers_agree():
    sim_driver = _SimDriver(seed=7)
    sim = run_workload(sim_driver)
    sim_driver.shutdown()
    check_internal_consistency(*sim)

    net_driver = _AsyncioDriver(seed=7)
    try:
        net = run_workload(net_driver)
    finally:
        net_driver.shutdown()
    check_internal_consistency(*net)

    # Cross-driver agreement: identical delivered sets and final views.
    # (ABCAST order may differ BETWEEN runs — §2.4 requires agreement
    # within a run, not across executions with different timing.)
    assert sorted(sim[0][0]) == sorted(net[0][0]), \
        "drivers delivered different message sets"
    assert sim[2][0] == net[2][0], "drivers ended in different views"


@realnet
def test_asyncio_driver_survives_lossy_links():
    """The same workload over a deliberately bad network.

    Localhost never loses a datagram, so without injected faults the
    retransmission, dedup, and reordering machinery of the UDP channel
    only runs under overload.  Here every outgoing datagram is dropped,
    duplicated, or held back with fixed probabilities (deterministic
    per-site schedules) — and the virtual synchrony invariants must
    come out exactly as on a clean wire.
    """
    from repro.net.udp import UdpConfig

    driver = _AsyncioDriver(seed=11, udp_config=UdpConfig(
        loss_rate=0.03, dup_rate=0.02, reorder=0.02, fault_seed=4))
    try:
        results = run_workload(driver)
        check_internal_consistency(*results)
        injected = {"faults_lost": 0, "faults_duped": 0,
                    "faults_reordered": 0}
        for site in driver.cluster.runtime.sites.values():
            if site.transport is None:
                continue
            stats = site.transport.stats()
            for key in injected:
                injected[key] += stats.get(key, 0)
    finally:
        driver.shutdown()
    assert sum(injected.values()) > 0, (
        "fault injection never fired — the lossy run tested nothing")
    assert injected["faults_lost"] > 0, injected


@realnet
def test_asyncio_driver_clean_teardown():
    """Shutdown leaves no armed timers or live bulk tasks behind."""
    cluster = AsyncioCluster(n_sites=2, seed=3)
    process, isis = cluster.spawn(0, "m0")
    box = {}

    def create():
        box["gid"] = yield isis.pg_create("t")

    process.spawn(create(), "create")
    assert cluster.run_until(lambda: "gid" in box, timeout=5.0)
    scheduler = cluster.runtime.scheduler
    assert scheduler.outstanding_timers() > 0  # heartbeats etc. armed
    cluster.shutdown(close_loop=False)
    assert scheduler.outstanding_timers() == 0, \
        "teardown left timers armed"
    cluster.runtime.loop.close()
