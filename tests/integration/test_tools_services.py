"""Integration tests: news service, recovery manager, transactions."""

import pytest

from repro import IsisCluster
from repro.core.engine import ABCAST
from repro.sim import sleep
from repro.tools import (
    NewsClient,
    NewsServer,
    ReplicatedData,
    SemaphoreClient,
    SemaphoreManager,
    TransactionTool,
    install_recovery,
)


class TestNewsService:
    def _setup(self, system, server_sites=(0, 1)):
        servers = []
        gid_box = {}
        proc0, isis0 = system.spawn(server_sites[0], "news0")
        NewsServer(isis0)
        servers.append((proc0, isis0))

        def create_main():
            gid = yield isis0.pg_create("@news")
            gid_box["gid"] = gid

        proc0.spawn(create_main(), "create")
        system.run_for(3.0)
        for i, site in enumerate(server_sites[1:], start=1):
            proc, isis = system.spawn(site, f"news{i}")
            NewsServer(isis)
            servers.append((proc, isis))

            def join_main(isis=isis):
                yield isis.pg_join(gid_box["gid"])

            proc.spawn(join_main(), f"join{i}")
            system.run_for(20.0)
        return gid_box["gid"], servers

    def test_subscriber_receives_posts_in_order(self):
        system = IsisCluster(n_sites=3, seed=31)
        gid, servers = self._setup(system)
        reader, isis_r = system.spawn(2, "reader")
        poster, isis_p = system.spawn(2, "poster")
        client = NewsClient(isis_r, gid)
        got = []

        def sub_main():
            yield client.subscribe("sports", lambda m: got.append(m["body"]))

        reader.spawn(sub_main(), "sub")
        system.run_for(20.0)

        def post_main():
            pub = NewsClient(isis_p, gid)
            for i in range(4):
                yield pub.post("sports", f"item-{i}")

        poster.spawn(post_main(), "post")
        system.run_for(40.0)
        assert got == [f"item-{i}" for i in range(4)]

    def test_unsubscribed_subject_not_delivered(self):
        system = IsisCluster(n_sites=2, seed=32)
        gid, servers = self._setup(system, server_sites=(0,))
        reader, isis_r = system.spawn(1, "reader")
        client = NewsClient(isis_r, gid)
        got = []

        def main():
            yield client.subscribe("weather", lambda m: got.append(m["body"]))
            yield client.post("finance", "stonks")
            yield client.post("weather", "rain")

        reader.spawn(main(), "main")
        system.run_for(40.0)
        assert got == ["rain"]


class TestRecoveryManager:
    def test_total_failure_last_site_restarts(self):
        system = IsisCluster(n_sites=3, seed=33)
        managers = install_recovery(system, settle_delay=4.0)
        restarted = []

        def service_program(process, mode, group_name):
            from repro.core.groups import Isis
            isis = Isis(process)
            restarted.append((process.site.site_id, mode))

            def main():
                if mode == "create":
                    yield isis.pg_create(group_name)
                else:
                    gid = yield isis.pg_lookup(group_name)
                    yield isis.pg_join(gid)

            process.spawn(main(), "svc.main")

        system.cluster.programs.register("svc", service_program)
        # Start the service at sites 0 and 1; register recovery there.
        for site in (0, 1):
            managers[site].register("the-service", "svc")
        system.run_for(2.0)
        server, isis = system.spawn(0, "svc")

        def boot_main():
            yield isis.pg_create("the-service")

        server.spawn(boot_main(), "boot")
        system.run_for(5.0)
        # Total failure: both registered sites crash.
        system.crash_site(0)
        system.crash_site(1)
        system.run_for(30.0)
        # Both restart; the recovery managers decide who recreates.
        system.restart_site(0)
        system.restart_site(1)
        system.run_for(120.0)
        modes = [m for _, m in restarted]
        assert "create" in modes, f"nobody restarted the group: {restarted}"
        assert system.sim.trace.value("tool.rm_restarts") >= 1

    def test_partial_failure_rejoins_running_group(self):
        system = IsisCluster(n_sites=3, seed=34)
        managers = install_recovery(system, settle_delay=4.0)
        actions = []

        def service_program(process, mode, group_name):
            from repro.core.groups import Isis
            isis = Isis(process)
            actions.append((process.site.site_id, mode))

            def main():
                if mode == "create":
                    yield isis.pg_create(group_name)
                else:
                    gid = yield isis.pg_lookup(group_name)
                    yield isis.pg_join(gid)

            process.spawn(main(), "svc.main")

        system.cluster.programs.register("svc", service_program)
        managers[0].register("dup-service", "svc")
        managers[1].register("dup-service", "svc")
        system.run_for(2.0)
        # The service runs at sites 0 and 1.
        for site in (0, 1):
            service_program(
                system.site(site).spawn_process("svc"),
                "create" if site == 0 else "join", "dup-service")
            system.run_for(10.0)
        actions.clear()
        # Site 1 crashes and recovers: the group still runs at site 0.
        system.crash_site(1)
        system.run_for(30.0)
        system.restart_site(1)
        system.run_for(120.0)
        assert (1, "join") in actions
        assert system.sim.trace.value("tool.rm_rejoins") >= 1


class TestTransactions:
    def _setup(self, system):
        proc0, isis0 = system.spawn(0, "store0")
        data0 = ReplicatedData(isis0, None, name="txkv", ordering=ABCAST)
        gid_box = {}

        def create_main():
            gid = yield isis0.pg_create("txstore")
            gid_box["gid"] = gid
            data0.gid = gid
            SemaphoreManager(isis0, gid)

        proc0.spawn(create_main(), "create")
        system.run_for(3.0)
        return gid_box["gid"], proc0, isis0, data0

    def test_commit_makes_writes_visible(self):
        system = IsisCluster(n_sites=2, seed=35)
        gid, proc, isis, data = self._setup(system)
        tool = TransactionTool(isis, data, SemaphoreClient(isis, gid))

        def main():
            txn = tool.begin()
            yield from txn.write("balance", 100)
            value = yield from txn.read("balance")
            assert value == 100
            yield from txn.commit()
            return data.read("balance")

        task = proc.spawn(main(), "txn")
        system.run_for(60.0)
        assert task.value == 100

    def test_abort_discards_writes(self):
        system = IsisCluster(n_sites=2, seed=36)
        gid, proc, isis, data = self._setup(system)
        tool = TransactionTool(isis, data, SemaphoreClient(isis, gid))

        def main():
            txn = tool.begin()
            yield from txn.write("x", "dirty")
            yield from txn.abort()
            return data.read("x", default="clean")

        task = proc.spawn(main(), "txn")
        system.run_for(60.0)
        assert task.value == "clean"

    def test_nested_child_commit_merges_into_parent(self):
        system = IsisCluster(n_sites=2, seed=37)
        gid, proc, isis, data = self._setup(system)
        tool = TransactionTool(isis, data, SemaphoreClient(isis, gid))

        def main():
            parent = tool.begin()
            child = tool.begin(parent=parent)
            yield from child.write("k", "from-child")
            yield from child.commit()
            # Not yet durable: the parent still holds it.
            before = data.read("k", default=None)
            yield from parent.commit()
            after = data.read("k")
            return before, after

        task = proc.spawn(main(), "txn")
        system.run_for(60.0)
        before, after = task.value
        assert before is None
        assert after == "from-child"

    def test_nested_child_abort_leaves_parent_clean(self):
        system = IsisCluster(n_sites=2, seed=38)
        gid, proc, isis, data = self._setup(system)
        tool = TransactionTool(isis, data, SemaphoreClient(isis, gid))

        def main():
            parent = tool.begin()
            yield from parent.write("a", 1)
            child = tool.begin(parent=parent)
            yield from child.write("b", 2)
            yield from child.abort()
            yield from parent.commit()
            return data.read("a"), data.read("b", default="absent")

        task = proc.spawn(main(), "txn")
        system.run_for(60.0)
        assert task.value == (1, "absent")

    def test_isolation_between_transactions(self):
        """Locks are per process: a second process's read waits for commit."""
        system = IsisCluster(n_sites=2, seed=39)
        gid, proc, isis, data = self._setup(system)
        tool = TransactionTool(isis, data, SemaphoreClient(isis, gid))
        reader_proc, reader_isis = system.spawn(1, "reader")
        reader_data = ReplicatedData(reader_isis, gid, name="txkv",
                                     ordering=ABCAST)
        reader_tool = TransactionTool(
            reader_isis, reader_data, SemaphoreClient(reader_isis, gid))
        order = []

        def writer():
            txn = tool.begin()
            yield from txn.write("shared", "w1")
            order.append("w1-wrote")
            yield sleep(system.sim, 5.0)
            yield from txn.commit()
            order.append("w1-committed")

        def reader():
            yield sleep(system.sim, 1.0)  # start after the writer locks
            txn = reader_tool.begin()
            value = yield from txn.read("shared")  # blocks on the lock
            order.append(f"read:{value}")
            yield from txn.commit()

        proc.spawn(writer(), "w")
        reader_proc.spawn(reader(), "r")
        system.run_for(120.0)
        assert "w1-committed" in order
        assert order.index("w1-committed") < order.index(
            next(o for o in order if o.startswith("read:")))
