"""Advanced integration scenarios: migration, bulk state transfer,
cross-group causality, site recovery, stability GC, bulletin boards."""

import pytest

from repro import IsisCluster, IsisConfig
from repro.sim import sleep
from repro.tools import BulletinBoard, register_raw_state


def deploy_pair(system, sites=(0, 1), name="adv", entry=16):
    deliveries = {site: [] for site in sites}
    members = []
    for site in sites:
        proc, isis = system.spawn(site, f"m{site}")
        proc.bind(entry, lambda msg, s=site: deliveries[s].append(msg))
        members.append((proc, isis))

    def create():
        yield members[0][1].pg_create(name)

    members[0][0].spawn(create(), "create")
    system.run_for(3.0)
    for i, site in enumerate(sites[1:], start=1):
        def join(isis=members[i][1]):
            gid = yield isis.pg_lookup(name)
            yield isis.pg_join(gid)

        members[i][0].spawn(join(), f"join{i}")
        system.run_for(20.0)
    return members, deliveries


class TestProcessMigration:
    def test_migrate_by_join_then_leave(self):
        """§3.8: 'Process migration can thus be performed by starting a
        process that will join the group and then arranging for some
        other member to drop out as soon as the transfer completes.'"""
        system = IsisCluster(n_sites=3, seed=61)
        members, deliveries = deploy_pair(system, (0,))
        old_proc, old_isis = members[0]
        state = {"counter": 41}
        register_raw_state(
            old_isis, "app",
            lambda: str(state["counter"]).encode(),
            lambda b: None)
        new_proc, new_isis = system.spawn(1, "migrated")
        landed = {}
        register_raw_state(
            new_isis, "app",
            lambda: b"",
            lambda b: landed.update(counter=int(b)))

        def migrate():
            gid = yield new_isis.pg_lookup("adv")
            yield new_isis.pg_join(gid)           # state transfers in
            yield old_isis.pg_leave(gid)          # old member drops out
            # The leave resolves at the leaver's site; give the commit a
            # moment to install at this member's site too.
            yield sleep(system.sim, 1.0)
            view = yield new_isis.pg_view(gid)
            return view

        task = new_proc.spawn(migrate(), "migrate")
        system.run_for(60.0)
        view = task.value
        assert landed["counter"] == 41            # state arrived intact
        assert len(view.members) == 1
        assert view.rank_of(new_proc.address) == 0


class TestBulkStateTransfer:
    def test_large_state_travels_over_tcp_channel(self):
        """§3.8: 'ISIS messages for small transfers and TCP channels for
        large ones.'"""
        system = IsisCluster(n_sites=2, seed=62)
        members, _ = deploy_pair(system, (0,))
        big = bytes(range(256)) * 1024  # 256 KB >> bulk threshold
        register_raw_state(members[0][1], "blob", lambda: big, lambda b: None)
        got = {}
        joiner, joiner_isis = system.spawn(1, "joiner")
        register_raw_state(joiner_isis, "blob", lambda: b"",
                           lambda b: got.update(blob=b))

        def join():
            gid = yield joiner_isis.pg_lookup("adv")
            yield joiner_isis.pg_join(gid)

        task = joiner.spawn(join(), "join")
        system.run_for(60.0)
        assert task.done and not task.rejected
        assert got["blob"] == big
        # fast_flush (default): the snapshot streams over the TCP
        # channel in chunks instead of one blob.
        assert system.sim.trace.value("bulk.transfers") >= 2
        assert system.sim.trace.value("state_transfer.chunks") >= 2
        assert system.sim.trace.value("state_transfer.bulk") == 0

    def test_large_state_single_blob_without_fast_flush(self):
        """Legacy path: one monolithic bulk transfer."""
        system = IsisCluster(n_sites=2, seed=62,
                             isis_config=IsisConfig(fast_flush=False))
        members, _ = deploy_pair(system, (0,))
        big = bytes(range(256)) * 1024
        register_raw_state(members[0][1], "blob", lambda: big, lambda b: None)
        got = {}
        joiner, joiner_isis = system.spawn(1, "joiner")
        register_raw_state(joiner_isis, "blob", lambda: b"",
                           lambda b: got.update(blob=b))

        def join():
            gid = yield joiner_isis.pg_lookup("adv")
            yield joiner_isis.pg_join(gid)

        task = joiner.spawn(join(), "join")
        system.run_for(60.0)
        assert task.done and not task.rejected
        assert got["blob"] == big
        assert system.sim.trace.value("state_transfer.bulk") == 1
        assert system.sim.trace.value("state_transfer.chunks") == 0

    def test_transfer_restarts_when_source_dies(self):
        system = IsisCluster(n_sites=3, seed=63)
        members, _ = deploy_pair(system, (0, 1))
        payload = b"replica-state"
        for proc, isis in members:
            register_raw_state(isis, "blob", lambda: payload, lambda b: None)
        got = {}
        joiner, joiner_isis = system.spawn(2, "joiner")
        register_raw_state(joiner_isis, "blob", lambda: b"",
                           lambda b: got.update(blob=b))

        def join():
            gid = yield joiner_isis.pg_lookup("adv")
            yield joiner_isis.pg_join(gid)
            return "joined"

        task = joiner.spawn(join(), "join")
        # Crash the transfer source (the oldest member, site 0) while the
        # join is in flight.
        system.run_for(0.05)
        system.crash_site(0)
        system.run_for(240.0)
        assert task.done and not task.rejected
        assert got.get("blob") == payload


class TestCrossGroupCausality:
    def test_causal_chain_through_two_groups(self):
        """A CBCAST in group B after delivering from group A must not be
        seen before the group-A message by a common member."""
        system = IsisCluster(n_sites=3, seed=64,
                             isis_config=IsisConfig())
        order = []
        # p0 in A and B; p1 in A and B (observer); p2 client.
        p0, isis0 = system.spawn(0, "p0")
        p1, isis1 = system.spawn(1, "p1")
        p1.bind(20, lambda msg: order.append(("A", msg["n"])))
        p1.bind(21, lambda msg: order.append(("B", msg["n"])))
        p0.bind(20, lambda msg: None)
        p0.bind(21, lambda msg: None)
        gids = {}

        def setup():
            gids["A"] = yield isis0.pg_create("groupA")
            gids["B"] = yield isis0.pg_create("groupB")

        p0.spawn(setup(), "setup")
        system.run_for(3.0)

        def join_both():
            yield isis1.pg_join(gids["A"])
            yield isis1.pg_join(gids["B"])

        p1.spawn(join_both(), "join")
        system.run_for(40.0)

        def chain():
            # Send to A, then *causally after it* send to B.
            yield isis0.cbcast(gids["A"], 20, n=1)
            yield isis0.cbcast(gids["B"], 21, n=2)

        p0.spawn(chain(), "chain")
        system.run_for(30.0)
        assert order == [("A", 1), ("B", 2)]


class TestSiteRecovery:
    def test_crashed_site_rejoins_site_view(self):
        system = IsisCluster(n_sites=3, seed=65)
        system.run_for(5.0)
        system.crash_site(2)
        system.run_for(60.0)
        view = system.kernel(0).site_view
        assert 2 not in view.sites()
        system.restart_site(2)
        system.run_for(60.0)
        view = system.kernel(0).site_view
        assert 2 in view.sites()
        # The recovered incarnation is the new one.
        assert view.incarnation_of(2) == 1

    def test_recovered_site_can_host_group_members(self):
        system = IsisCluster(n_sites=3, seed=66)
        members, deliveries = deploy_pair(system, (0, 1))
        system.crash_site(1)
        system.run_for(60.0)
        system.restart_site(1)
        system.run_for(60.0)
        # A fresh process at the recovered site joins the running group.
        proc, isis = system.spawn(1, "reborn")
        got = []
        proc.bind(16, lambda msg: got.append(msg["q"]))

        def rejoin():
            gid = yield isis.pg_lookup("adv")
            yield isis.pg_join(gid)

        task = proc.spawn(rejoin(), "rejoin")
        system.run_for(60.0)
        assert task.done and not task.rejected

        def send():
            gid = yield members[0][1].pg_lookup("adv")
            yield members[0][1].cbcast(gid, 16, q="post-recovery")

        members[0][0].spawn(send(), "send")
        system.run_for(20.0)
        assert got == ["post-recovery"]


class TestStabilityGC:
    def test_buffers_trimmed_after_stability_round(self):
        system = IsisCluster(n_sites=2, seed=67)
        members, _ = deploy_pair(system, (0, 1))

        def blast():
            gid = yield members[0][1].pg_lookup("adv")
            for i in range(10):
                yield members[0][1].cbcast(gid, 16, n=i)

        members[0][0].spawn(blast(), "blast")
        system.run_for(30.0)  # several stability intervals
        assert system.sim.trace.value("stability.trimmed") > 0
        for site in (0, 1):
            engine = next(iter(system.kernel(site).engines.values()))
            assert engine.store.buffered_count == 0


class TestBulletinBoard:
    def _setup(self, system):
        members, _ = deploy_pair(system, (0, 1), name="bb")
        boards = []
        gid_box = {}

        def get_gid():
            gid_box["gid"] = yield members[0][1].pg_lookup("bb")

        members[0][0].spawn(get_gid(), "gid")
        system.run_for(3.0)
        for proc, isis in members:
            boards.append(BulletinBoard(isis, gid_box["gid"]))
        return members, boards, gid_box["gid"]

    def test_posts_replicate_and_reads_are_local(self):
        system = IsisCluster(n_sites=2, seed=68)
        members, boards, gid = self._setup(system)

        def post():
            yield boards[0].post("hypotheses", "h1", "the cat did it")

        members[0][0].spawn(post(), "post")
        system.run_for(10.0)
        for board in boards:
            postings = board.read("hypotheses")
            assert [p.body for p in postings] == ["the cat did it"]

    def test_ordered_posts_agree_across_replicas(self):
        system = IsisCluster(n_sites=2, seed=69)
        members, boards, gid = self._setup(system)

        def post(idx):
            for i in range(3):
                yield boards[idx].post_ordered("plan", f"s{idx}", f"{idx}.{i}")

        members[0][0].spawn(post(0), "p0")
        members[1][0].spawn(post(1), "p1")
        system.run_for(40.0)
        seq0 = [p.body for p in boards[0].read("plan")]
        seq1 = [p.body for p in boards[1].read("plan")]
        assert seq0 == seq1 and len(seq0) == 6

    def test_watchers_fire_on_arrival(self):
        system = IsisCluster(n_sites=2, seed=70)
        members, boards, gid = self._setup(system)
        seen = []
        boards[1].watch("alerts", lambda p: seen.append(p.subject))

        def post():
            yield boards[0].post("alerts", "fire", "!")

        members[0][0].spawn(post(), "post")
        system.run_for(10.0)
        assert seen == ["fire"]

    def test_board_history_transfers_to_joiner(self):
        system = IsisCluster(n_sites=3, seed=71)
        members, boards, gid = self._setup(system)

        def post():
            yield boards[0].post("log", "entry", "before-join")

        members[0][0].spawn(post(), "post")
        system.run_for(10.0)
        late_proc, late_isis = system.spawn(2, "late")
        late_board = BulletinBoard(late_isis, gid)

        def join():
            yield late_isis.pg_join(gid)

        late_proc.spawn(join(), "join")
        system.run_for(30.0)
        assert [p.body for p in late_board.read("log")] == ["before-join"]
