"""Integration tests for the §3 toolkit tools."""

import pytest

from repro import ALL, IsisCluster
from repro.core.engine import ABCAST
from repro.sim import sleep
from repro.errors import DeadlockDetected
from repro.tools import (
    ConfigTool,
    CoordCohortTool,
    ProtectionTool,
    ReplicatedData,
    SemaphoreClient,
    SemaphoreManager,
    SiteMonitor,
)


def build_service(system, sites, name="svc", tool_factory=None):
    """Members on each site; tool_factory(isis, gid) builds per-member tools."""
    members = []
    gid_box = {}

    creator, isis0 = system.spawn(sites[0], "m0")
    members.append((creator, isis0))

    def create_main():
        gid = yield isis0.pg_create(name)
        gid_box["gid"] = gid
        if tool_factory:
            gid_box.setdefault("tools", []).append(tool_factory(isis0, gid))

    creator.spawn(create_main(), "create")
    system.run_for(3.0)
    gid = gid_box["gid"]
    for i, site in enumerate(sites[1:], start=1):
        proc, isis = system.spawn(site, f"m{i}")
        members.append((proc, isis))

        def join_main(isis=isis):
            if tool_factory:
                gid_box["tools"].append(tool_factory(isis, gid))
            yield isis.pg_join(gid)

        proc.spawn(join_main(), f"join{i}")
        system.run_for(20.0)
    return gid, members, gid_box.get("tools", [])


class TestConfigTool:
    def test_update_applies_at_all_members(self):
        system = IsisCluster(n_sites=3, seed=11)
        gid, members, tools = build_service(
            system, [0, 1, 2], tool_factory=lambda i, g: ConfigTool(i, g))

        def update_main():
            yield tools[0].update("workers", 5)

        members[0][0].spawn(update_main(), "update")
        system.run_for(20.0)
        assert [t.read("workers") for t in tools] == [5, 5, 5]
        assert len({t.version for t in tools}) == 1

    def test_config_transfers_to_joiner(self):
        system = IsisCluster(n_sites=3, seed=12)
        gid, members, tools = build_service(
            system, [0, 1], tool_factory=lambda i, g: ConfigTool(i, g))

        def update_main():
            yield tools[0].update("mode", "horizontal")

        members[0][0].spawn(update_main(), "update")
        system.run_for(20.0)
        # A third member joins afterwards: state transfer carries config.
        proc, isis = system.spawn(2, "late")
        late_tool = ConfigTool(isis, gid)

        def join_main():
            yield isis.pg_join(gid)

        proc.spawn(join_main(), "join")
        system.run_for(20.0)
        assert late_tool.read("mode") == "horizontal"

    def test_concurrent_updates_same_order_everywhere(self):
        system = IsisCluster(n_sites=3, seed=13)
        gid, members, tools = build_service(
            system, [0, 1, 2], tool_factory=lambda i, g: ConfigTool(i, g))
        orders = [[] for _ in tools]
        for tool, order in zip(tools, orders):
            tool.watch(lambda item, value, o=order: o.append((item, value)))

        def update_main(idx):
            yield tools[idx].update("owner", f"m{idx}")

        for idx in range(3):
            members[idx][0].spawn(update_main(idx), f"u{idx}")
        system.run_for(40.0)
        assert orders[0] == orders[1] == orders[2]
        assert len(orders[0]) == 3


class TestReplicatedData:
    def test_async_update_visible_at_all_copies(self):
        system = IsisCluster(n_sites=3, seed=14)
        gid, members, tools = build_service(
            system, [0, 1, 2],
            tool_factory=lambda i, g: ReplicatedData(i, g, name="kv"))

        def update_main():
            yield tools[0].update("x", value=42)

        members[0][0].spawn(update_main(), "update")
        system.run_for(15.0)
        assert [t.read("x") for t in tools] == [42, 42, 42]

    def test_abcast_mode_counters_converge(self):
        system = IsisCluster(n_sites=3, seed=15)
        gid, members, tools = build_service(
            system, [0, 1, 2],
            tool_factory=lambda i, g: ReplicatedData(
                i, g, name="ctr", ordering=ABCAST))

        def bump_main(idx):
            for _ in range(3):
                yield tools[idx].update("n", delta=1)

        for idx in range(3):
            members[idx][0].spawn(bump_main(idx), f"bump{idx}")
        system.run_for(60.0)
        assert [t.read("n") for t in tools] == [9, 9, 9]

    def test_remote_read_by_client(self):
        system = IsisCluster(n_sites=3, seed=16)
        gid, members, tools = build_service(
            system, [0, 1],
            tool_factory=lambda i, g: ReplicatedData(i, g, name="kv"))

        def update_main():
            yield tools[0].update("color", value="red")

        members[0][0].spawn(update_main(), "update")
        system.run_for(10.0)
        client, client_isis = system.spawn(2, "client")
        reader = ReplicatedData(client_isis, gid, name="kv")

        def read_main():
            value = yield reader.remote_read("color")
            return value

        task = client.spawn(read_main(), "read")
        system.run_for(20.0)
        assert task.value == "red"

    def test_state_transfers_to_joiner(self):
        system = IsisCluster(n_sites=2, seed=17)
        gid, members, tools = build_service(
            system, [0],
            tool_factory=lambda i, g: ReplicatedData(i, g, name="kv"))

        def update_main():
            yield tools[0].update("k", value="v1")

        members[0][0].spawn(update_main(), "update")
        system.run_for(10.0)
        proc, isis = system.spawn(1, "late")
        late = ReplicatedData(isis, gid, name="kv")

        def join_main():
            yield isis.pg_join(gid)

        proc.spawn(join_main(), "join")
        system.run_for(20.0)
        assert late.read("k") == "v1"

    def test_logging_and_recovery(self):
        system = IsisCluster(n_sites=2, seed=18)
        gid, members, tools = build_service(
            system, [0],
            tool_factory=lambda i, g: ReplicatedData(
                i, g, name="kv", logging=True))

        def update_main():
            for i in range(5):
                yield tools[0].update(f"k{i}", value=i)
            yield tools[0].isis.flush()

        members[0][0].spawn(update_main(), "update")
        system.run_for(20.0)
        # Simulate total failure + restart at the same site.
        system.crash_site(0)
        system.restart_site(0)
        system.run_for(5.0)
        proc, isis = system.spawn(0, "reborn")
        recovered = ReplicatedData(isis, gid, name="kv", logging=True)
        replayed = recovered.recover_from_log()
        assert replayed == 5
        assert recovered.read("k3") == 3


class TestCoordinatorCohort:
    def _setup(self, system, work_log):
        gid, members, tools = build_service(
            system, [0, 1, 2],
            tool_factory=lambda i, g: CoordCohortTool(i))
        # Every member binds the request entry and runs the tool.
        for idx, ((proc, isis), tool) in enumerate(zip(members, tools)):
            def handler(msg, isis=isis, tool=tool, idx=idx):
                def action(m):
                    work_log.append(idx)
                    return {"result": f"done-by-{idx}"}
                yield from tool.run(msg, gid, [m[0].address for m in members],
                                    action)

            proc.bind(30, handler)
        return gid, members, tools

    def test_only_coordinator_executes(self):
        system = IsisCluster(n_sites=3, seed=19)
        work_log = []
        gid, members, tools = self._setup(system, work_log)
        caller, caller_isis = system.spawn(1, "caller")

        def call_main():
            replies = yield caller_isis.cbcast(gid, 30, nwant=1, job="j1")
            return replies[0]["result"]

        task = caller.spawn(call_main(), "call")
        system.run_for(30.0)
        assert len(work_log) == 1
        # §6: the tool is biased towards a coordinator at the caller's site.
        assert work_log[0] == 1
        assert task.value == "done-by-1"

    def test_cohort_takes_over_on_coordinator_crash(self):
        system = IsisCluster(n_sites=3, seed=20)
        work_log = []
        gid, members, tools = self._setup(system, work_log)
        caller, caller_isis = system.spawn(1, "caller")

        def call_main():
            try:
                replies = yield caller_isis.cbcast(gid, 30, nwant=1, job="j1")
                return replies[0]["result"]
            except Exception as err:
                return f"error:{type(err).__name__}"

        task = caller.spawn(call_main(), "call")
        # Let the request reach members, then crash the coordinator's site
        # before it can act (its site is the caller's: site 1).
        system.run_for(0.08)
        system.crash_site(1)
        system.run_for(120.0)
        # A surviving cohort executed the action.
        assert any(idx != 1 for idx in work_log) or task.done


class TestSemaphores:
    def _setup(self, system, sites=(0, 1)):
        gid, members, tools = build_service(
            system, list(sites),
            tool_factory=lambda i, g: SemaphoreManager(i, g))
        return gid, members, tools

    def test_mutual_exclusion_fifo(self):
        system = IsisCluster(n_sites=3, seed=21)
        gid, members, tools = self._setup(system)
        client1, isis1 = system.spawn(2, "c1")
        client2, isis2 = system.spawn(2, "c2")
        events = []

        def critical(tag, isis, client):
            sem = SemaphoreClient(isis, gid)
            yield sem.p("mutex")
            events.append(("in", tag, system.now))
            yield sleep(system.sim, 1.0)
            events.append(("out", tag, system.now))
            yield sem.v("mutex")

        client1.spawn(critical("a", isis1, client1), "crit-a")
        client2.spawn(critical("b", isis2, client2), "crit-b")
        system.run_for(60.0)
        ins = [e for e in events if e[0] == "in"]
        outs = [e for e in events if e[0] == "out"]
        assert len(ins) == 2 and len(outs) == 2
        # No overlap: second entry after first exit.
        assert events[0][1] == events[1][1]  # in/out pairs interleave cleanly

    def test_release_on_site_failure(self):
        system = IsisCluster(n_sites=3, seed=22)
        gid, members, tools = self._setup(system, sites=(0, 1))
        holder, isis_h = system.spawn(2, "holder")
        waiter, isis_w = system.spawn(0, "waiter")
        got = []

        def hold_forever():
            sem = SemaphoreClient(isis_h, gid)
            yield sem.p("lock")
            got.append("holder-in")
            # never releases; its site will crash

        def wait_main():
            sem = SemaphoreClient(isis_w, gid)
            yield sem.p("lock")
            got.append("waiter-in")

        holder.spawn(hold_forever(), "hold")
        system.run_for(20.0)
        waiter.spawn(wait_main(), "wait")
        system.run_for(10.0)
        assert got == ["holder-in"]
        system.crash_site(2)  # the holder's site dies
        system.run_for(120.0)
        assert "waiter-in" in got

    def test_deadlock_detected(self):
        system = IsisCluster(n_sites=2, seed=23)
        gid, members, tools = self._setup(system, sites=(0,))
        p1, isis1 = system.spawn(1, "p1")
        p2, isis2 = system.spawn(1, "p2")
        outcomes = []

        def worker(isis, first, second):
            sem = SemaphoreClient(isis, gid)
            yield sem.p(first)
            yield sleep(system.sim, 2.0)
            try:
                yield sem.p(second)
                outcomes.append("got-both")
                yield sem.v(second)
            except DeadlockDetected:
                outcomes.append("deadlock")
            yield sem.v(first)

        p1.spawn(worker(isis1, "A", "B"), "w1")
        p2.spawn(worker(isis2, "B", "A"), "w2")
        system.run_for(120.0)
        assert "deadlock" in outcomes
        assert "got-both" in outcomes  # the survivor completes


class TestProtection:
    def test_untrusted_sender_filtered(self):
        system = IsisCluster(n_sites=2, seed=24)
        server, isis_s = system.spawn(0, "server")
        got = []
        server.bind(40, lambda msg: got.append(msg["q"]))
        protection = ProtectionTool(isis_s)
        friend, isis_f = system.spawn(1, "friend")
        stranger, isis_x = system.spawn(1, "stranger")
        protection.trust(friend.address)
        gid_box = {}

        def create_main():
            gid = yield isis_s.pg_create("protected")
            gid_box["gid"] = gid

        server.spawn(create_main(), "create")
        system.run_for(3.0)

        def send(isis, q):
            gid = yield isis.pg_lookup("protected")
            yield isis.cbcast(gid, 40, q=q)

        friend.spawn(send(isis_f, "from-friend"), "sf")
        stranger.spawn(send(isis_x, "from-stranger"), "sx")
        system.run_for(20.0)
        assert got == ["from-friend"]
        assert system.sim.trace.value("protection.rejected") == 1

    def test_join_validation_refuses(self):
        system = IsisCluster(n_sites=2, seed=25)
        server, isis_s = system.spawn(0, "server")
        gid_box = {}

        def create_main():
            gid = yield isis_s.pg_create("vip")
            gid_box["gid"] = gid
            yield isis_s.pg_join_verify(
                gid, lambda joiner, cred: cred == "secret")

        server.spawn(create_main(), "create")
        system.run_for(3.0)
        outsider, isis_o = system.spawn(1, "outsider")
        insider, isis_i = system.spawn(1, "insider")

        def join(isis, cred):
            gid = yield isis.pg_lookup("vip")
            try:
                yield isis.pg_join(gid, credentials=cred)
                return "joined"
            except Exception as err:
                return type(err).__name__

        t1 = outsider.spawn(join(isis_o, "wrong"), "j1")
        system.run_for(20.0)
        t2 = insider.spawn(join(isis_i, "secret"), "j2")
        system.run_for(20.0)
        assert t1.value == "JoinRefused"
        assert t2.value == "joined"


class TestSiteMonitor:
    def test_failure_and_recovery_events(self):
        system = IsisCluster(n_sites=3, seed=26)
        watcher, isis_w = system.spawn(0, "watcher")
        monitor = SiteMonitor(isis_w)
        events = []
        monitor.watch_failure(2, lambda s: events.append(("fail", s)))
        monitor.watch_recovery(2, lambda s: events.append(("recover", s)))
        system.run_for(5.0)
        system.crash_site(2)
        system.run_for(60.0)
        assert ("fail", 2) in events
        system.restart_site(2)
        system.run_for(60.0)
        assert ("recover", 2) in events
