"""End-to-end tests of the virtual synchrony core: groups and multicast."""

import pytest

from repro import ALL, IsisCluster, Message
from repro.errors import NoSuchGroup


def make_system(n_sites=3, seed=0):
    return IsisCluster(n_sites=n_sites, seed=seed)


def run_to_result(system, task, timeout=120.0):
    system.run(until=system.now + timeout)
    assert task.done, f"task {task.name} did not finish by t={system.now}"
    return task.value


class TestGroupLifecycle:
    def test_create_and_lookup(self):
        system = make_system()
        server, isis = system.spawn(0, "server")
        client, client_isis = system.spawn(1, "client")

        def server_main():
            gid = yield isis.pg_create("svc")
            return gid

        def client_main():
            gid = yield client_isis.pg_lookup("svc")
            return gid

        t1 = server.spawn(server_main(), "create")
        system.run_for(5.0)
        gid = t1.value
        assert gid.is_group
        t2 = client.spawn(client_main(), "lookup")
        system.run_for(5.0)
        assert t2.value == gid

    def test_lookup_unknown_name_fails(self):
        system = make_system()
        client, isis = system.spawn(0, "client")

        def main():
            try:
                yield isis.pg_lookup("ghost")
            except NoSuchGroup:
                return "missing"

        task = client.spawn(main(), "lookup")
        system.run_for(5.0)
        assert task.value == "missing"

    def test_join_from_another_site(self):
        system = make_system()
        creator, isis0 = system.spawn(0, "creator")
        joiner, isis1 = system.spawn(1, "joiner")
        views = {}

        def create_main():
            gid = yield isis0.pg_create("team")
            views["gid"] = gid

        def join_main():
            gid = yield isis1.pg_lookup("team")
            view = yield isis1.pg_join(gid)
            return view

        creator.spawn(create_main(), "create")
        system.run_for(3.0)
        task = joiner.spawn(join_main(), "join")
        system.run_for(20.0)
        view = task.value
        assert view.rank_of(creator.address) == 0  # creator is oldest
        assert view.rank_of(joiner.address) == 1
        assert len(view.members) == 2

    def test_members_see_same_view_sequence(self):
        system = make_system()
        creator, isis0 = system.spawn(0, "creator")
        history0, history1 = [], []

        def create_main():
            gid = yield isis0.pg_create("team")
            yield isis0.pg_monitor(gid, lambda v: history0.append(
                tuple(str(m) for m in v.members)))

        creator.spawn(create_main(), "create")
        system.run_for(3.0)

        joiners = []
        for site in (1, 2):
            proc, isis = system.spawn(site, f"j{site}")
            joiners.append(proc)

            def join_main(isis=isis, hist=history1 if site == 1 else None):
                gid = yield isis.pg_lookup("team")
                yield isis.pg_join(gid)
                if hist is not None:
                    yield isis.pg_monitor(gid, lambda v: hist.append(
                        tuple(str(m) for m in v.members)))

            proc.spawn(join_main(), f"join{site}")
            system.run_for(20.0)
        # The creator observed both joins, in order, ending at 3 members.
        assert len(history0) == 2
        assert len(history0[-1]) == 3

    def test_leave_shrinks_view(self):
        system = make_system()
        creator, isis0 = system.spawn(0, "creator")
        joiner, isis1 = system.spawn(1, "joiner")
        views = []

        def create_main():
            gid = yield isis0.pg_create("team")
            yield isis0.pg_monitor(gid, lambda v: views.append(v))

        def join_then_leave():
            gid = yield isis1.pg_lookup("team")
            yield isis1.pg_join(gid)
            yield isis1.pg_leave(gid)
            return "left"

        creator.spawn(create_main(), "create")
        system.run_for(3.0)
        task = joiner.spawn(join_then_leave(), "joinleave")
        system.run_for(30.0)
        assert task.value == "left"
        assert len(views[-1].members) == 1


class TestMulticast:
    def _group_of_three(self, system, entry=16):
        """Three members on three sites, all binding ``entry``."""
        deliveries = {0: [], 1: [], 2: []}
        procs = []
        for site in range(3):
            proc, isis = system.spawn(site, f"m{site}")
            proc.bind(entry, lambda msg, s=site: deliveries[s].append(msg))
            procs.append((proc, isis))

        def create_main():
            yield procs[0][1].pg_create("g3")

        procs[0][0].spawn(create_main(), "create")
        system.run_for(3.0)

        for site in (1, 2):
            def join_main(isis=procs[site][1]):
                gid = yield isis.pg_lookup("g3")
                yield isis.pg_join(gid)

            procs[site][0].spawn(join_main(), f"join{site}")
            system.run_for(20.0)
        return procs, deliveries

    def test_cbcast_reaches_all_members(self):
        system = make_system()
        procs, deliveries = self._group_of_three(system)

        def send_main():
            gid = yield procs[0][1].pg_lookup("g3")
            yield procs[0][1].cbcast(gid, 16, q="hello")

        procs[0][0].spawn(send_main(), "send")
        system.run_for(10.0)
        for site in range(3):
            assert [m["q"] for m in deliveries[site]] == ["hello"]

    def test_cbcast_sender_order_preserved(self):
        system = make_system()
        procs, deliveries = self._group_of_three(system)

        def send_main():
            gid = yield procs[0][1].pg_lookup("g3")
            for i in range(5):
                yield procs[0][1].cbcast(gid, 16, seq=i)

        procs[0][0].spawn(send_main(), "send")
        system.run_for(15.0)
        for site in range(3):
            assert [m["seq"] for m in deliveries[site]] == list(range(5))

    def test_abcast_total_order_across_concurrent_senders(self):
        system = make_system(seed=3)
        procs, deliveries = self._group_of_three(system)

        def send_main(idx):
            gid = yield procs[idx][1].pg_lookup("g3")
            for i in range(4):
                yield procs[idx][1].abcast(gid, 16, tag=f"s{idx}.{i}")

        for idx in range(3):
            procs[idx][0].spawn(send_main(idx), f"send{idx}")
        system.run_for(40.0)
        orders = [[m["tag"] for m in deliveries[s]] for s in range(3)]
        assert len(orders[0]) == 12
        assert orders[0] == orders[1] == orders[2]

    def test_rpc_collects_requested_replies(self):
        system = make_system()
        procs, _ = self._group_of_three(system)
        # Rebind: members answer queries.
        for site in range(3):
            proc, isis = procs[site]

            def answer(msg, isis=isis, site=site):
                yield isis.reply(msg, answer=site * 10)

            proc.bind(17, answer)
        caller, caller_isis = system.spawn(0, "caller")

        def call_main():
            gid = yield caller_isis.pg_lookup("g3")
            replies = yield caller_isis.cbcast(gid, 17, nwant=ALL, q="x")
            return sorted(r["answer"] for r in replies)

        task = caller.spawn(call_main(), "call")
        system.run_for(20.0)
        assert task.value == [0, 10, 20]

    def test_null_replies_release_all_waiters(self):
        system = make_system()
        procs, _ = self._group_of_three(system)
        for site in range(3):
            proc, isis = procs[site]

            def answer(msg, isis=isis, site=site):
                if site == 1:
                    yield isis.reply(msg, answer="real")
                else:
                    yield isis.null_reply(msg)

            proc.bind(18, answer)
        caller, caller_isis = system.spawn(2, "caller")

        def call_main():
            gid = yield caller_isis.pg_lookup("g3")
            replies = yield caller_isis.cbcast(gid, 18, nwant=ALL, q="x")
            return [r["answer"] for r in replies]

        task = caller.spawn(call_main(), "call")
        system.run_for(20.0)
        assert task.value == ["real"]

    def test_gbcast_delivered_to_all(self):
        system = make_system()
        procs, deliveries = self._group_of_three(system)

        def send_main():
            gid = yield procs[1][1].pg_lookup("g3")
            yield procs[1][1].gbcast(gid, 16, cfg="new")

        procs[1][0].spawn(send_main(), "send")
        system.run_for(20.0)
        for site in range(3):
            assert [m["cfg"] for m in deliveries[site]] == ["new"]

    def test_nonmember_client_rpc(self):
        system = make_system()
        procs, _ = self._group_of_three(system)
        for site in range(3):
            proc, isis = procs[site]

            def answer(msg, isis=isis, site=site):
                yield isis.reply(msg, frm=site)

            proc.bind(19, answer)
        client, client_isis = system.spawn(1, "outsider")

        def call_main():
            gid = yield client_isis.pg_lookup("g3")
            replies = yield client_isis.cbcast(gid, 19, nwant=ALL, q="ping")
            return sorted(r["frm"] for r in replies)

        task = client.spawn(call_main(), "call")
        system.run_for(25.0)
        assert task.value == [0, 1, 2]
