"""Tests for the factory-automation services (§1's motivating example)."""

import pytest

from repro import IsisCluster
from repro.apps.factory import (
    EmulsionClient,
    EmulsionService,
    TransportService,
)


def deploy_emulsion(system, sites):
    services = []
    first = EmulsionService(system.site(sites[0]).spawn_process("em0"))
    services.append(first)
    first.process.spawn(first.start(mode="create"), "start0")
    system.run_for(3.0)
    for i, site in enumerate(sites[1:], start=1):
        svc = EmulsionService(system.site(site).spawn_process(f"em{i}"))
        services.append(svc)
        svc.process.spawn(svc.start(mode="join"), f"start{i}")
        system.run_for(25.0)
    return services


class TestEmulsionService:
    def test_batch_executed_once_and_replicated(self):
        system = IsisCluster(n_sites=3, seed=51)
        services = deploy_emulsion(system, [0, 1])
        client_proc = system.site(2).spawn_process("fab-client")
        client = EmulsionClient(client_proc)

        def main():
            reply = yield from client.submit("batch-1", wafers=25)
            return reply["batch"], reply["coated"]

        task = client_proc.spawn(main(), "submit")
        system.run_for(60.0)
        assert task.value == ("batch-1", 25)
        # Every replica saw the batch and knows it completed.
        assert all("batch-1" in svc.completed for svc in services)
        assert all(not svc.queue for svc in services)

    def test_cohort_reruns_batch_after_coordinator_crash(self):
        system = IsisCluster(n_sites=3, seed=52)
        services = deploy_emulsion(system, [0, 1])
        client_proc = system.site(2).spawn_process("fab-client")
        client = EmulsionClient(client_proc)

        def main():
            reply = yield from client.submit("batch-x", wafers=10)
            return reply["batch"]

        task = client_proc.spawn(main(), "submit")
        system.run_for(0.08)  # request in flight
        system.crash_site(2 % 2)  # crash a member site mid-computation
        system.run_for(180.0)
        survivors = [s for s in services if s.process.alive]
        assert survivors
        assert any("batch-x" in s.completed for s in survivors)


class TestTransportService:
    def test_locations_replicate_and_config_assigns(self):
        system = IsisCluster(n_sites=3, seed=53)
        first = TransportService(system.site(0).spawn_process("tr0"))
        first.process.spawn(first.start(mode="create"), "start0")
        system.run_for(3.0)
        second = TransportService(system.site(1).spawn_process("tr1"))
        second.process.spawn(second.start(mode="join"), "start1")
        system.run_for(25.0)

        def main():
            yield from first.assign_station("litho-1", 0)
            yield from first.move("wafer-17", "litho-1")

        first.process.spawn(main(), "ops")
        system.run_for(30.0)
        assert first.where("wafer-17") == "litho-1"
        assert second.where("wafer-17") == "litho-1"
        assert second.config.read("station:litho-1") == 0
