"""Tests for the §5 twenty-questions application (all seven steps)."""

import pytest

from repro import IsisCluster
from repro.apps.twenty_questions import (
    DEFAULT_DATABASE,
    NO,
    SOMETIMES,
    YES,
    TwentyQuestionsClient,
    TwentyQuestionsServer,
    parse_query,
    register_program,
    verdict,
)
from repro.errors import IsisError


class TestQueryParsing:
    def test_vertical_query(self):
        assert parse_query("color = red") == (False, "color", "=", "red")

    def test_horizontal_query(self):
        assert parse_query("*price > 9000") == (True, "price", ">", 9000)

    def test_numeric_coercion(self):
        assert parse_query("price < 100")[3] == 100

    def test_unknown_column_rejected(self):
        with pytest.raises(IsisError):
            parse_query("weight = 3")

    def test_garbage_rejected(self):
        with pytest.raises(IsisError):
            parse_query("what is this")


class TestVerdicts:
    def test_all_match_yes(self):
        rows = [{"color": "red"}, {"color": "red"}]
        assert verdict(rows, "color", "=", "red") == YES

    def test_none_match_no(self):
        rows = [{"color": "red"}]
        assert verdict(rows, "color", "=", "blue") == NO

    def test_some_match_sometimes(self):
        rows = [{"price": 10}, {"price": 10000}]
        assert verdict(rows, "price", ">", 9000) == SOMETIMES

    def test_empty_rows_no(self):
        assert verdict([], "color", "=", "red") == NO

    def test_type_mismatch_is_no_match(self):
        rows = [{"price": "cheap"}]
        assert verdict(rows, "price", ">", 100) == NO


def deploy_service(system, sites, nmembers=None, standby_sites=(),
                   logging=False):
    """Start the service with one member per site (+ optional standbys)."""
    nmembers = nmembers if nmembers is not None else len(sites)
    servers = []
    creator = TwentyQuestionsServer(
        system.site(sites[0]).spawn_process("tq0"),
        nmembers=nmembers, logging=logging)
    servers.append(creator)
    creator.process.spawn(creator.start(mode="create"), "start0")
    system.run_for(3.0)
    for i, site in enumerate(sites[1:], start=1):
        server = TwentyQuestionsServer(
            system.site(site).spawn_process(f"tq{i}"),
            nmembers=nmembers, logging=logging)
        servers.append(server)
        server.process.spawn(server.start(mode="join"), f"start{i}")
        system.run_for(25.0)
    for i, site in enumerate(standby_sites):
        standby = TwentyQuestionsServer(
            system.site(site).spawn_process(f"tq-sb{i}"),
            nmembers=nmembers, standby=True, logging=logging)
        servers.append(standby)
        standby.process.spawn(standby.start(mode="join"), f"sb{i}")
        system.run_for(25.0)
    return servers


def make_client(system, site, nmembers):
    proc = system.site(site).spawn_process("front-end")
    return proc, TwentyQuestionsClient(proc, nmembers=nmembers)


class TestDistributedService:
    def test_vertical_query_single_reply(self):
        system = IsisCluster(n_sites=4, seed=41)
        deploy_service(system, [0, 1, 2])
        proc, client = make_client(system, 3, nmembers=3)

        def main():
            result, answers = yield from client.ask("color = red")
            return result, answers

        task = proc.spawn(main(), "ask")
        system.run_for(40.0)
        result, answers = task.value
        assert result == SOMETIMES  # one red row among ten
        assert len(answers) == 1   # §5: vertical mode, one responder

    def test_horizontal_query_all_members_respond(self):
        system = IsisCluster(n_sites=4, seed=42)
        deploy_service(system, [0, 1, 2])
        proc, client = make_client(system, 3, nmembers=3)

        def main():
            result, answers = yield from client.ask("*price > 9000")
            return result, answers

        task = proc.spawn(main(), "ask")
        system.run_for(40.0)
        result, answers = task.value
        assert sorted(answers) == [0, 1, 2]
        assert result == SOMETIMES  # the paper's example answer vector

    def test_paper_example_price_query(self):
        """§5: '*price > 9000' over the paper's table, NMEMBERS rows split."""
        system = IsisCluster(n_sites=4, seed=43)
        deploy_service(system, [0, 1, 2, 3])
        proc, client = make_client(system, 0, nmembers=4)

        def main():
            result, answers = yield from client.ask("*price > 9000")
            return result, answers

        task = proc.spawn(main(), "ask")
        system.run_for(40.0)
        result, answers = task.value
        assert len(answers) == 4
        # Rows are dealt round-robin; with 10 rows over 4 members the
        # aggregate must be 'sometimes' (prices straddle 9000).
        assert result == SOMETIMES

    def test_secret_category_filters_rows(self):
        system = IsisCluster(n_sites=3, seed=44)
        deploy_service(system, [0, 1])
        proc, client = make_client(system, 2, nmembers=2)

        def main():
            yield from client.pick_category("car")
            result, _ = yield from client.ask("object = car")
            return result

        task = proc.spawn(main(), "ask")
        system.run_for(40.0)
        assert task.value == YES


class TestStandbys:
    def test_standby_nulls_until_member_fails(self):
        system = IsisCluster(n_sites=4, seed=45)
        servers = deploy_service(system, [0, 1], nmembers=2,
                                 standby_sites=(2,))
        proc, client = make_client(system, 3, nmembers=2)

        def ask_once():
            result, answers = yield from client.ask("*price > 9000")
            return answers

        task = proc.spawn(ask_once(), "ask1")
        system.run_for(40.0)
        assert sorted(task.value) == [0, 1]
        # Kill member 1: the standby recomputes its rank and takes over.
        servers[1].process.kill()
        system.run_for(40.0)
        task2 = proc.spawn(ask_once(), "ask2")
        system.run_for(60.0)
        assert sorted(task2.value) == [0, 1]  # served again by two members


class TestDynamicUpdates:
    def test_update_visible_to_subsequent_queries(self):
        system = IsisCluster(n_sites=3, seed=46)
        servers = deploy_service(system, [0, 1])
        proc, client = make_client(system, 2, nmembers=2)

        def main():
            size = yield from client.add_row(
                object="plane", color="silver", size="jumbo",
                price=1000000, make="Boeing", model="747")
            result, _ = yield from client.ask("*object = plane")
            return size, result

        task = proc.spawn(main(), "main")
        system.run_for(60.0)
        size, result = task.value
        assert size == len(DEFAULT_DATABASE) + 1
        assert result == SOMETIMES  # planes now exist among the cars
        assert all(len(s.database) == size for s in servers)

    def test_updates_totally_ordered_with_queries(self):
        """GBCAST updates serialize against CBCAST queries (§5 step 5)."""
        system = IsisCluster(n_sites=3, seed=47)
        servers = deploy_service(system, [0, 1])
        sizes = [len(s.database) for s in servers]
        proc, client = make_client(system, 2, nmembers=2)

        def main():
            for i in range(3):
                yield from client.add_row(
                    object=f"thing{i}", color="grey", size="s",
                    price=i, make="m", model="x")

        task = proc.spawn(main(), "main")
        system.run_for(90.0)
        assert all(len(s.database) == sizes[0] + 3 for s in servers)
        # Every member appended in the same order.
        tails = [tuple(r["object"] for r in s.database[-3:]) for s in servers]
        assert len(set(tails)) == 1


class TestTotalFailureRecovery:
    def test_log_replay_restores_updates(self):
        system = IsisCluster(n_sites=2, seed=48)
        servers = deploy_service(system, [0], logging=True)
        proc, client = make_client(system, 1, nmembers=1)

        def main():
            yield from client.add_row(
                object="boat", color="white", size="yacht",
                price=500000, make="Beneteau", model="Oceanis")

        task = proc.spawn(main(), "main")
        system.run_for(60.0)
        assert task.done and not task.rejected
        # Total failure of the only member's site.
        system.crash_site(0)
        system.run_for(10.0)
        system.restart_site(0)
        system.run_for(10.0)
        # Restart from the log (what the recovery manager would run).
        reborn = TwentyQuestionsServer(
            system.site(0).spawn_process("tq-reborn"), nmembers=1,
            logging=True)
        reborn.process.spawn(reborn.start(mode="recover", group_name="twenty2"),
                             "restart")
        system.run_for(20.0)
        assert any(r["object"] == "boat" for r in reborn.database)


class TestLoadBalancing:
    def test_shuffle_remaps_member_numbers(self):
        system = IsisCluster(n_sites=3, seed=49)
        servers = deploy_service(system, [0, 1])
        system.run_for(5.0)
        before = [s.my_number() for s in servers]

        def shuffle_main():
            yield servers[0].shuffle(1)

        servers[0].process.spawn(shuffle_main(), "shuffle")
        system.run_for(30.0)
        after = [s.my_number() for s in servers]
        assert before == [0, 1]
        assert after == [1, 0]
