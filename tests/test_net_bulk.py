"""Tests for the bulk (TCP-like) transfer channel."""

import pytest

from repro.errors import SiteDown
from repro.net import BulkChannel, BulkConfig, Lan
from repro.sim import Cpu, Simulator


def setup_bulk(sim, bandwidth=1_250_000.0):
    lan = Lan(sim)
    lan.attach(0, lambda f: None)
    lan.attach(1, lambda f: None)
    bulk = BulkChannel(sim, lan, BulkConfig(bandwidth=bandwidth))
    return lan, bulk, Cpu(sim, "cpu0"), Cpu(sim, "cpu1")


def test_transfer_delivers_data():
    sim = Simulator()
    _, bulk, cpu0, cpu1 = setup_bulk(sim)
    data = b"S" * 100_000
    promise = bulk.transfer(0, 1, data, cpu0, cpu1)
    sim.run()
    assert promise.value == data


def test_transfer_time_is_bandwidth_bound():
    sim = Simulator()
    _, bulk, cpu0, cpu1 = setup_bulk(sim, bandwidth=1_000_000.0)
    data = b"x" * 1_000_000  # 1 MB at 1 MB/s ~ 1 second + setup
    done_at = []
    promise = bulk.transfer(0, 1, data, cpu0, cpu1)
    promise.add_done_callback(lambda p: done_at.append(sim.now))
    sim.run()
    assert done_at[0] == pytest.approx(1.0, rel=0.2)


def test_transfer_fails_if_receiver_crashes():
    sim = Simulator()
    lan, bulk, cpu0, cpu1 = setup_bulk(sim)
    promise = bulk.transfer(0, 1, b"y" * 500_000, cpu0, cpu1)
    sim.call_after(0.1, lan.detach, 1)
    sim.run()
    assert promise.rejected
    assert isinstance(promise.exception, SiteDown)


def test_transfer_fails_if_sender_crashes():
    sim = Simulator()
    lan, bulk, cpu0, cpu1 = setup_bulk(sim)
    promise = bulk.transfer(0, 1, b"z" * 500_000, cpu0, cpu1)
    sim.call_after(0.1, lan.detach, 0)
    sim.run()
    assert promise.rejected


def test_bulk_counters():
    sim = Simulator()
    _, bulk, cpu0, cpu1 = setup_bulk(sim)
    bulk.transfer(0, 1, b"a" * 1000, cpu0, cpu1)
    sim.run()
    assert sim.trace.value("bulk.transfers") == 1
    assert sim.trace.value("bulk.bytes") == 1000
