"""Unit tests for tasks, promises, and waiting helpers (repro.sim.tasks)."""

import pytest

from repro.errors import SimTimeout, SimulationError, TaskKilled
from repro.sim import (
    Promise,
    Simulator,
    all_of,
    any_of,
    sleep,
    spawn,
    with_timeout,
)


def run_task(sim, gen, name="t"):
    task = spawn(sim, gen, name=name)
    sim.run()
    return task


class TestPromise:
    def test_resolve_and_value(self):
        p = Promise()
        p.resolve(42)
        assert p.done and p.value == 42

    def test_reject_and_value_raises(self):
        p = Promise()
        p.reject(ValueError("boom"))
        assert p.done and p.rejected
        with pytest.raises(ValueError):
            _ = p.value

    def test_value_before_resolution_raises(self):
        p = Promise()
        with pytest.raises(SimulationError):
            _ = p.value

    def test_resolution_is_idempotent(self):
        p = Promise()
        p.resolve(1)
        p.resolve(2)
        p.reject(ValueError())
        assert p.value == 1

    def test_callback_after_done_fires_immediately(self):
        p = Promise()
        p.resolve("x")
        seen = []
        p.add_done_callback(lambda q: seen.append(q.value))
        assert seen == ["x"]


class TestTask:
    def test_task_returns_value(self):
        sim = Simulator()

        def body():
            yield sleep(sim, 1.0)
            return "done"

        task = run_task(sim, body())
        assert task.value == "done"
        assert sim.now == 1.0

    def test_yield_none_interleaves_tasks(self):
        sim = Simulator()
        order = []

        def body(tag):
            for i in range(3):
                order.append((tag, i))
                yield None

        spawn(sim, body("a"))
        spawn(sim, body("b"))
        sim.run()
        assert order == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2),
        ]

    def test_yield_promise_receives_value(self):
        sim = Simulator()
        box = Promise()
        sim.call_after(2.0, box.resolve, "payload")

        def body():
            got = yield box
            return got

        task = run_task(sim, body())
        assert task.value == "payload"

    def test_rejected_promise_raises_in_task(self):
        sim = Simulator()
        box = Promise()
        sim.call_after(1.0, box.reject, KeyError("nope"))

        def body():
            try:
                yield box
            except KeyError:
                return "caught"

        task = run_task(sim, body())
        assert task.value == "caught"

    def test_task_exception_rejects_task(self):
        sim = Simulator()

        def body():
            yield sleep(sim, 0.5)
            raise RuntimeError("bad")

        task = run_task(sim, body())
        assert task.rejected
        with pytest.raises(RuntimeError):
            _ = task.value

    def test_yield_from_composes_subroutines(self):
        sim = Simulator()

        def sub():
            yield sleep(sim, 1.0)
            return 10

        def body():
            a = yield from sub()
            b = yield from sub()
            return a + b

        task = run_task(sim, body())
        assert task.value == 20
        assert sim.now == 2.0

    def test_task_waits_on_other_task(self):
        sim = Simulator()

        def child():
            yield sleep(sim, 3.0)
            return "child-result"

        def parent():
            t = spawn(sim, child(), name="child")
            got = yield t
            return got

        task = run_task(sim, parent())
        assert task.value == "child-result"

    def test_yielding_garbage_rejects(self):
        sim = Simulator()

        def body():
            yield 42

        task = run_task(sim, body())
        assert task.rejected

    def test_kill_runs_finally_blocks(self):
        sim = Simulator()
        cleaned = []

        def body():
            try:
                yield sleep(sim, 100.0)
            finally:
                cleaned.append(True)

        task = spawn(sim, body())
        sim.call_after(1.0, task.kill)
        sim.run()
        assert cleaned == [True]
        assert task.rejected
        assert isinstance(task.exception, TaskKilled)

    def test_kill_is_idempotent_and_safe_after_done(self):
        sim = Simulator()

        def body():
            yield sleep(sim, 1.0)
            return 1

        task = run_task(sim, body())
        task.kill()
        assert task.value == 1

    def test_killed_task_does_not_resume_from_promise(self):
        sim = Simulator()
        box = Promise()
        resumed = []

        def body():
            got = yield box
            resumed.append(got)

        task = spawn(sim, body())
        sim.call_after(1.0, task.kill)
        sim.call_after(2.0, box.resolve, "late")
        sim.run()
        assert resumed == []


class TestHelpers:
    def test_all_of_collects_in_order(self):
        sim = Simulator()
        p1, p2 = Promise(), Promise()
        sim.call_after(2.0, p1.resolve, "one")
        sim.call_after(1.0, p2.resolve, "two")

        def body():
            got = yield all_of([p1, p2])
            return got

        task = run_task(sim, body())
        assert task.value == ["one", "two"]

    def test_all_of_empty_resolves_immediately(self):
        sim = Simulator()

        def body():
            got = yield all_of([])
            return got

        assert run_task(sim, body()).value == []

    def test_all_of_rejects_on_first_failure(self):
        sim = Simulator()
        p1, p2 = Promise(), Promise()
        sim.call_after(1.0, p1.reject, ValueError("x"))

        def body():
            yield all_of([p1, p2])

        task = run_task(sim, body())
        assert task.rejected

    def test_any_of_returns_first(self):
        sim = Simulator()
        p1, p2 = Promise(), Promise()
        sim.call_after(5.0, p1.resolve, "slow")
        sim.call_after(1.0, p2.resolve, "fast")

        def body():
            got = yield any_of([p1, p2])
            return got

        assert run_task(sim, body()).value == (1, "fast")

    def test_with_timeout_passes_through_fast_result(self):
        sim = Simulator()
        p = Promise()
        sim.call_after(1.0, p.resolve, "ok")

        def body():
            got = yield with_timeout(sim, p, 10.0)
            return got

        assert run_task(sim, body()).value == "ok"

    def test_with_timeout_rejects_slow_result(self):
        sim = Simulator()
        p = Promise()
        sim.call_after(10.0, p.resolve, "late")

        def body():
            try:
                yield with_timeout(sim, p, 1.0)
            except SimTimeout:
                return "timed-out"

        assert run_task(sim, body()).value == "timed-out"
