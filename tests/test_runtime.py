"""Unit tests for sites, processes, programs and stable storage."""

import pytest

from repro.errors import IsisError, SiteDown, TaskKilled
from repro.msg import Message
from repro.runtime import Cluster, Site
from repro.sim import Simulator, sleep


def make_cluster(n=2):
    sim = Simulator()
    cluster = Cluster(sim, n_sites=n)
    cluster.boot_all()
    return sim, cluster


class TestSiteLifecycle:
    def test_boot_assigns_incarnations(self):
        sim, cluster = make_cluster()
        assert cluster.site(0).incarnation == 0
        cluster.site(0).crash()
        cluster.site(0).boot()
        assert cluster.site(0).incarnation == 1

    def test_double_boot_rejected(self):
        sim, cluster = make_cluster()
        with pytest.raises(IsisError):
            cluster.site(0).boot()

    def test_crash_kills_processes(self):
        sim, cluster = make_cluster()
        site = cluster.site(0)
        process = site.spawn_process("app")
        site.crash()
        assert not process.alive
        assert not site.up

    def test_crash_is_idempotent(self):
        sim, cluster = make_cluster()
        cluster.site(0).crash()
        cluster.site(0).crash()

    def test_spawn_on_down_site_rejected(self):
        sim, cluster = make_cluster()
        cluster.site(0).crash()
        with pytest.raises(SiteDown):
            cluster.site(0).spawn_process("app")

    def test_boot_hooks_run_each_boot(self):
        sim = Simulator()
        cluster = Cluster(sim, n_sites=1)
        boots = []
        cluster.site(0).on_boot(lambda s: boots.append(s.incarnation))
        cluster.site(0).boot()
        cluster.site(0).crash()
        cluster.site(0).boot()
        assert boots == [0, 1]

    def test_stable_store_survives_crash(self):
        sim, cluster = make_cluster()
        site = cluster.site(0)
        site.stable.write("checkpoint", b"state-v1")
        sim.run()
        site.crash()
        site.boot()
        assert site.stable.read("checkpoint") == b"state-v1"

    def test_up_sites_tracks_membership(self):
        sim, cluster = make_cluster(3)
        assert cluster.up_sites() == [0, 1, 2]
        cluster.site(1).crash()
        assert cluster.up_sites() == [0, 2]


class TestProcess:
    def test_addresses_unique_and_site_scoped(self):
        sim, cluster = make_cluster()
        p1 = cluster.site(0).spawn_process("a")
        p2 = cluster.site(0).spawn_process("b")
        p3 = cluster.site(1).spawn_process("c")
        assert p1.address != p2.address
        assert p1.address.site == 0 and p3.address.site == 1

    def test_restarted_site_mints_new_incarnation_addresses(self):
        sim, cluster = make_cluster()
        before = cluster.site(0).spawn_process("a").address
        cluster.site(0).crash()
        cluster.site(0).boot()
        after = cluster.site(0).spawn_process("a").address
        assert before.incarnation != after.incarnation

    def test_deliver_dispatches_to_entry(self):
        sim, cluster = make_cluster()
        process = cluster.site(0).spawn_process("svc")
        got = []
        process.bind(16, lambda msg: got.append(msg["q"]))
        msg = Message(q="hello", _entry=16)
        process.deliver(msg)
        assert got == ["hello"]

    def test_generator_handler_runs_as_task(self):
        sim, cluster = make_cluster()
        process = cluster.site(0).spawn_process("svc")
        got = []

        def handler(msg):
            yield sleep(sim, 1.0)
            got.append(msg["q"])

        process.bind(16, handler)
        process.deliver(Message(q="async", _entry=16))
        assert got == []
        sim.run()
        assert got == ["async"]

    def test_unbound_entry_drops_message(self):
        sim, cluster = make_cluster()
        process = cluster.site(0).spawn_process("svc")
        process.deliver(Message(_entry=99))
        assert sim.trace.value("process.dropped.nohandler") == 1

    def test_filter_can_absorb_message(self):
        sim, cluster = make_cluster()
        process = cluster.site(0).spawn_process("svc")
        got = []
        process.bind(16, lambda msg: got.append(msg))
        process.add_filter(lambda msg: None if msg.get("bad") else msg)
        process.deliver(Message(bad=True, _entry=16))
        process.deliver(Message(bad=False, _entry=16))
        assert len(got) == 1

    def test_filter_can_rewrite_message(self):
        sim, cluster = make_cluster()
        process = cluster.site(0).spawn_process("svc")
        got = []
        process.bind(16, lambda msg: got.append(msg["tag"]))

        def stamp(msg):
            msg["tag"] = "stamped"
            return msg

        process.add_filter(stamp)
        process.deliver(Message(_entry=16))
        assert got == ["stamped"]

    def test_kill_terminates_tasks_with_cleanup(self):
        sim, cluster = make_cluster()
        process = cluster.site(0).spawn_process("svc")
        cleanup = []

        def body():
            try:
                yield sleep(sim, 100.0)
            finally:
                cleanup.append("ran")

        process.spawn(body())
        sim.call_after(1.0, process.kill)
        sim.run()
        assert cleanup == ["ran"]
        assert process.task_count == 0

    def test_dead_process_drops_deliveries(self):
        sim, cluster = make_cluster()
        process = cluster.site(0).spawn_process("svc")
        process.kill()
        process.deliver(Message(_entry=16))
        assert sim.trace.value("process.dropped.dead") == 1

    def test_death_watchers_fire_once(self):
        sim, cluster = make_cluster()
        process = cluster.site(0).spawn_process("svc")
        deaths = []
        process.watch_death(lambda p: deaths.append(p.name))
        process.kill()
        process.kill()
        assert deaths == ["svc"]


class TestPrograms:
    def test_run_program_instantiates(self):
        sim, cluster = make_cluster()
        started = []

        def factory(process, greeting):
            started.append((process.site.site_id, greeting))

        cluster.programs.register("greeter", factory)
        cluster.site(1).run_program("greeter", "hi")
        assert started == [(1, "hi")]

    def test_unknown_program_rejected(self):
        sim, cluster = make_cluster()
        with pytest.raises(IsisError):
            cluster.site(0).run_program("ghost")


class TestStableStore:
    def test_logs_append_in_order(self):
        sim, cluster = make_cluster()
        store = cluster.site(0).stable
        store.append("log", b"r1")
        store.append("log", b"r2")
        sim.run()
        assert store.read_log("log") == [b"r1", b"r2"]

    def test_truncate_after_checkpoint(self):
        sim, cluster = make_cluster()
        store = cluster.site(0).stable
        for i in range(5):
            store.append("log", f"r{i}".encode())
        sim.run()
        store.truncate_log("log", keep_from=3)
        assert store.read_log("log") == [b"r3", b"r4"]

    def test_write_latency_is_charged(self):
        sim, cluster = make_cluster()
        store = cluster.site(0).stable
        done = []
        store.write("k", b"v").add_done_callback(lambda p: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(store.write_latency)

    def test_keys_prefix_listing(self):
        sim, cluster = make_cluster()
        store = cluster.site(0).stable
        store.write("grp/a", b"1")
        store.write("grp/b", b"2")
        store.write("other", b"3")
        sim.run()
        assert store.keys("grp/") == ["grp/a", "grp/b"]
