"""Unit and scenario tests for the LAN and reliable transport."""

import pytest

from repro.errors import SiteDown
from repro.net import Frame, Lan, LanConfig, Transport
from repro.sim import Cpu, Simulator


def make_pair(sim, config=None, sites=(0, 1)):
    """Two sites wired through one LAN; returns (lan, transports, inboxes)."""
    lan = Lan(sim, config or LanConfig())
    transports = {}
    inboxes = {site: [] for site in sites}

    def receiver(site):
        def on_message(src, data):
            inboxes[site].append((src, data))
        return on_message

    for site in sites:
        transports[site] = Transport(
            sim, lan, site, epoch=0, cpu=Cpu(sim, f"cpu{site}"),
            on_message=receiver(site),
        )
    return lan, transports, inboxes


class TestLan:
    def test_inter_site_delay_applied(self):
        sim = Simulator()
        lan = Lan(sim)
        arrivals = []
        lan.attach(1, lambda f: arrivals.append(sim.now))
        lan.send(Frame(kind="data", src_site=0, dst_site=1))
        sim.run()
        assert arrivals == [pytest.approx(0.016)]

    def test_intra_site_delay_applied(self):
        sim = Simulator()
        lan = Lan(sim)
        arrivals = []
        lan.attach(0, lambda f: arrivals.append(sim.now))
        lan.send(Frame(kind="data", src_site=0, dst_site=0))
        sim.run()
        assert arrivals == [pytest.approx(0.010)]

    def test_detached_site_drops_frames(self):
        sim = Simulator()
        lan = Lan(sim)
        lan.send(Frame(kind="data", src_site=0, dst_site=9))
        sim.run()
        assert sim.trace.value("lan.dropped.detached") == 1

    def test_partition_drops_cross_frames(self):
        sim = Simulator()
        lan = Lan(sim)
        got = []
        lan.attach(1, got.append)
        lan.attach(2, got.append)
        lan.partition([[0, 1], [2]])
        lan.send(Frame(kind="data", src_site=0, dst_site=1))
        lan.send(Frame(kind="data", src_site=0, dst_site=2))
        sim.run()
        assert len(got) == 1
        assert sim.trace.value("lan.dropped.partition") == 1
        lan.heal()
        lan.send(Frame(kind="data", src_site=0, dst_site=2))
        sim.run()
        assert len(got) == 2

    def test_loss_rate_drops_some_frames(self):
        sim = Simulator(seed=1)
        lan = Lan(sim, LanConfig(loss_rate=0.5))
        got = []
        lan.attach(1, got.append)
        for _ in range(100):
            lan.send(Frame(kind="data", src_site=0, dst_site=1))
        sim.run()
        dropped = sim.trace.value("lan.dropped.loss")
        assert dropped > 0
        assert len(got) + dropped == 100

    def test_hw_multicast_counts_one_transmission(self):
        sim = Simulator()
        lan = Lan(sim, LanConfig(hw_multicast=True))
        got = []
        for site in (1, 2, 3):
            lan.attach(site, got.append)
        sends = lan.multicast(
            Frame(kind="data", src_site=0, dst_site=0), [1, 2, 3])
        sim.run()
        assert sends == 1
        assert len(got) == 3

    def test_sw_multicast_counts_per_destination(self):
        sim = Simulator()
        lan = Lan(sim)
        sends = lan.multicast(
            Frame(kind="data", src_site=0, dst_site=0), [1, 2, 3])
        assert sends == 3


class TestTransport:
    def test_basic_delivery(self):
        sim = Simulator()
        _, transports, inboxes = make_pair(sim)
        transports[0].send(1, b"hello")
        sim.run()
        assert inboxes[1] == [(0, b"hello")]

    def test_fifo_order_preserved(self):
        sim = Simulator()
        _, transports, inboxes = make_pair(sim)
        for i in range(20):
            transports[0].send(1, f"msg{i}".encode())
        sim.run()
        assert [d for _, d in inboxes[1]] == [f"msg{i}".encode() for i in range(20)]

    def test_large_message_fragmented_and_reassembled(self):
        sim = Simulator()
        data = bytes(range(256)) * 64  # 16 KB -> 4 fragments at 4 KB MTU
        _, transports, inboxes = make_pair(sim)
        transports[0].send(1, data)
        sim.run()
        assert inboxes[1] == [(0, data)]
        assert sim.trace.value("lan.frames.inter") >= 4

    def test_send_promise_resolves_on_ack(self):
        sim = Simulator()
        _, transports, _ = make_pair(sim)
        promise = transports[0].send(1, b"payload")
        sim.run()
        assert promise.done and not promise.rejected

    def test_reliable_over_lossy_link(self):
        sim = Simulator(seed=42)
        config = LanConfig(loss_rate=0.3)
        _, transports, inboxes = make_pair(sim, config)
        for i in range(30):
            transports[0].send(1, f"m{i}".encode())
        # Probe-based recovery with exponential backoff needs headroom
        # at 30% loss.
        sim.run(until=240.0)
        assert [d for _, d in inboxes[1]] == [f"m{i}".encode() for i in range(30)]
        assert sim.trace.value("transport.retransmits") > 0

    def test_no_duplicate_deliveries_despite_retransmits(self):
        sim = Simulator(seed=7)
        config = LanConfig(loss_rate=0.4)
        _, transports, inboxes = make_pair(sim, config)
        transports[0].send(1, b"only-once")
        sim.run(until=30.0)
        assert inboxes[1] == [(0, b"only-once")]

    def test_window_limits_outstanding_then_drains(self):
        sim = Simulator()
        config = LanConfig(window=2)
        _, transports, inboxes = make_pair(sim, config)
        for i in range(10):
            transports[0].send(1, f"w{i}".encode())
        sim.run()
        assert len(inboxes[1]) == 10

    def test_local_delivery_uses_intra_site_path(self):
        sim = Simulator()
        _, transports, inboxes = make_pair(sim)
        transports[0].send(0, b"loopback")
        sim.run()
        assert inboxes[0] == [(0, b"loopback")]

    def test_shutdown_rejects_pending_sends(self):
        sim = Simulator()
        lan = Lan(sim)
        sink = Transport(sim, lan, 1, 0, Cpu(sim), lambda s, d: None)
        lan.detach(1)  # frames vanish: promise can never resolve
        sender = Transport(sim, lan, 0, 0, Cpu(sim), lambda s, d: None)
        promise = sender.send(1, b"doomed")
        sim.call_after(1.0, sender.shutdown)
        sim.run(until=2.0)
        assert promise.rejected
        assert isinstance(promise.exception, SiteDown)
        assert sink.alive  # unrelated transport unaffected

    def test_send_after_shutdown_rejected(self):
        sim = Simulator()
        lan = Lan(sim)
        sender = Transport(sim, lan, 0, 0, Cpu(sim), lambda s, d: None)
        sender.shutdown()
        promise = sender.send(1, b"late")
        assert promise.rejected

    def test_reset_channel_rejects_only_that_destination(self):
        sim = Simulator()
        lan = Lan(sim)
        sender = Transport(sim, lan, 0, 0, Cpu(sim), lambda s, d: None)
        inbox = []
        Transport(sim, lan, 2, 0, Cpu(sim), lambda s, d: inbox.append(d))
        doomed = sender.send(1, b"to-dead-site")
        fine = sender.send(2, b"to-live-site")
        sim.call_after(0.5, sender.reset_channel, 1)
        sim.run(until=5.0)
        assert doomed.rejected
        assert fine.done and not fine.rejected
        assert inbox == [b"to-live-site"]

    def test_stale_epoch_frames_ignored(self):
        sim = Simulator()
        lan = Lan(sim)
        inbox = []
        Transport(sim, lan, 1, 0, Cpu(sim), lambda s, d: inbox.append(d))
        old = Transport(sim, lan, 0, epoch=2, cpu=Cpu(sim), on_message=lambda s, d: None)
        old.send(1, b"new-epoch")
        sim.run()
        # Now a frame from epoch 1 (older) arrives: must be dropped.
        lan.send(Frame(kind="data", src_site=0, dst_site=1, epoch=1, seq=0,
                       msg_id=9, payload=b"stale"))
        sim.run()
        assert inbox == [b"new-epoch"]
        assert sim.trace.value("transport.stale_epoch") == 1
