"""Unit and scenario tests for the LAN and reliable transport."""

import pytest

from repro.errors import SiteDown
from repro.net import Frame, Lan, LanConfig, Transport
from repro.sim import Cpu, Simulator


def make_pair(sim, config=None, sites=(0, 1)):
    """Two sites wired through one LAN; returns (lan, transports, inboxes)."""
    lan = Lan(sim, config or LanConfig())
    transports = {}
    inboxes = {site: [] for site in sites}

    def receiver(site):
        def on_message(src, data):
            inboxes[site].append((src, data))
        return on_message

    for site in sites:
        transports[site] = Transport(
            sim, lan, site, epoch=0, cpu=Cpu(sim, f"cpu{site}"),
            on_message=receiver(site),
        )
    return lan, transports, inboxes


class TestLan:
    def test_inter_site_delay_applied(self):
        sim = Simulator()
        lan = Lan(sim)
        arrivals = []
        lan.attach(1, lambda f: arrivals.append(sim.now))
        lan.send(Frame(kind="data", src_site=0, dst_site=1))
        sim.run()
        assert arrivals == [pytest.approx(0.016)]

    def test_intra_site_delay_applied(self):
        sim = Simulator()
        lan = Lan(sim)
        arrivals = []
        lan.attach(0, lambda f: arrivals.append(sim.now))
        lan.send(Frame(kind="data", src_site=0, dst_site=0))
        sim.run()
        assert arrivals == [pytest.approx(0.010)]

    def test_detached_site_drops_frames(self):
        sim = Simulator()
        lan = Lan(sim)
        lan.send(Frame(kind="data", src_site=0, dst_site=9))
        sim.run()
        assert sim.trace.value("lan.dropped.detached") == 1

    def test_partition_drops_cross_frames(self):
        sim = Simulator()
        lan = Lan(sim)
        got = []
        lan.attach(1, got.append)
        lan.attach(2, got.append)
        lan.partition([[0, 1], [2]])
        lan.send(Frame(kind="data", src_site=0, dst_site=1))
        lan.send(Frame(kind="data", src_site=0, dst_site=2))
        sim.run()
        assert len(got) == 1
        assert sim.trace.value("lan.dropped.partition") == 1
        lan.heal()
        lan.send(Frame(kind="data", src_site=0, dst_site=2))
        sim.run()
        assert len(got) == 2

    def test_loss_rate_drops_some_frames(self):
        sim = Simulator(seed=1)
        lan = Lan(sim, LanConfig(loss_rate=0.5))
        got = []
        lan.attach(1, got.append)
        for _ in range(100):
            lan.send(Frame(kind="data", src_site=0, dst_site=1))
        sim.run()
        dropped = sim.trace.value("lan.dropped.loss")
        assert dropped > 0
        assert len(got) + dropped == 100

    def test_hw_multicast_counts_one_transmission(self):
        sim = Simulator()
        lan = Lan(sim, LanConfig(hw_multicast=True))
        got = []
        for site in (1, 2, 3):
            lan.attach(site, got.append)
        sends = lan.multicast(
            Frame(kind="data", src_site=0, dst_site=0), [1, 2, 3])
        sim.run()
        assert sends == 1
        assert len(got) == 3

    def test_sw_multicast_counts_per_destination(self):
        sim = Simulator()
        lan = Lan(sim)
        sends = lan.multicast(
            Frame(kind="data", src_site=0, dst_site=0), [1, 2, 3])
        assert sends == 3


class TestTransport:
    def test_basic_delivery(self):
        sim = Simulator()
        _, transports, inboxes = make_pair(sim)
        transports[0].send(1, b"hello")
        sim.run()
        assert inboxes[1] == [(0, b"hello")]

    def test_fifo_order_preserved(self):
        sim = Simulator()
        _, transports, inboxes = make_pair(sim)
        for i in range(20):
            transports[0].send(1, f"msg{i}".encode())
        sim.run()
        assert [d for _, d in inboxes[1]] == [f"msg{i}".encode() for i in range(20)]

    def test_large_message_fragmented_and_reassembled(self):
        sim = Simulator()
        data = bytes(range(256)) * 64  # 16 KB -> 4 fragments at 4 KB MTU
        _, transports, inboxes = make_pair(sim)
        transports[0].send(1, data)
        sim.run()
        assert inboxes[1] == [(0, data)]
        assert sim.trace.value("lan.frames.inter") >= 4

    def test_send_promise_resolves_on_ack(self):
        sim = Simulator()
        _, transports, _ = make_pair(sim)
        promise = transports[0].send(1, b"payload")
        sim.run()
        assert promise.done and not promise.rejected

    def test_reliable_over_lossy_link(self):
        sim = Simulator(seed=42)
        config = LanConfig(loss_rate=0.3)
        _, transports, inboxes = make_pair(sim, config)
        for i in range(30):
            transports[0].send(1, f"m{i}".encode())
        # Probe-based recovery with exponential backoff needs headroom
        # at 30% loss.
        sim.run(until=240.0)
        assert [d for _, d in inboxes[1]] == [f"m{i}".encode() for i in range(30)]
        assert sim.trace.value("transport.retransmits") > 0

    def test_no_duplicate_deliveries_despite_retransmits(self):
        sim = Simulator(seed=7)
        config = LanConfig(loss_rate=0.4)
        _, transports, inboxes = make_pair(sim, config)
        transports[0].send(1, b"only-once")
        sim.run(until=30.0)
        assert inboxes[1] == [(0, b"only-once")]

    def test_window_limits_outstanding_then_drains(self):
        sim = Simulator()
        config = LanConfig(window=2)
        _, transports, inboxes = make_pair(sim, config)
        for i in range(10):
            transports[0].send(1, f"w{i}".encode())
        sim.run()
        assert len(inboxes[1]) == 10

    def test_local_delivery_uses_intra_site_path(self):
        sim = Simulator()
        _, transports, inboxes = make_pair(sim)
        transports[0].send(0, b"loopback")
        sim.run()
        assert inboxes[0] == [(0, b"loopback")]

    def test_shutdown_rejects_pending_sends(self):
        sim = Simulator()
        lan = Lan(sim)
        sink = Transport(sim, lan, 1, 0, Cpu(sim), lambda s, d: None)
        lan.detach(1)  # frames vanish: promise can never resolve
        sender = Transport(sim, lan, 0, 0, Cpu(sim), lambda s, d: None)
        promise = sender.send(1, b"doomed")
        sim.call_after(1.0, sender.shutdown)
        sim.run(until=2.0)
        assert promise.rejected
        assert isinstance(promise.exception, SiteDown)
        assert sink.alive  # unrelated transport unaffected

    def test_send_after_shutdown_rejected(self):
        sim = Simulator()
        lan = Lan(sim)
        sender = Transport(sim, lan, 0, 0, Cpu(sim), lambda s, d: None)
        sender.shutdown()
        promise = sender.send(1, b"late")
        assert promise.rejected

    def test_reset_channel_rejects_only_that_destination(self):
        sim = Simulator()
        lan = Lan(sim)
        sender = Transport(sim, lan, 0, 0, Cpu(sim), lambda s, d: None)
        inbox = []
        Transport(sim, lan, 2, 0, Cpu(sim), lambda s, d: inbox.append(d))
        doomed = sender.send(1, b"to-dead-site")
        fine = sender.send(2, b"to-live-site")
        sim.call_after(0.5, sender.reset_channel, 1)
        sim.run(until=5.0)
        assert doomed.rejected
        assert fine.done and not fine.rejected
        assert inbox == [b"to-live-site"]

    def test_stale_epoch_frames_ignored(self):
        sim = Simulator()
        lan = Lan(sim)
        inbox = []
        Transport(sim, lan, 1, 0, Cpu(sim), lambda s, d: inbox.append(d))
        old = Transport(sim, lan, 0, epoch=2, cpu=Cpu(sim), on_message=lambda s, d: None)
        old.send(1, b"new-epoch")
        sim.run()
        # Now a frame from epoch 1 (older) arrives: must be dropped.
        lan.send(Frame(kind="data", src_site=0, dst_site=1, epoch=1, seq=0,
                       msg_id=9, payload=b"stale"))
        sim.run()
        assert inbox == [b"new-epoch"]
        assert sim.trace.value("transport.stale_epoch") == 1


class TestDelayedAcks:
    def test_default_acks_every_frame(self):
        sim = Simulator()
        lan, transports, inboxes = make_pair(sim)
        for i in range(5):
            transports[0].send(1, b"m%d" % i)
        sim.run()
        assert len(inboxes[1]) == 5
        # One pure ACK frame per in-order data frame: today's behavior.
        assert transports[1].acks_pure == 5
        assert transports[1].acks_coalesced == 0

    def test_ack_delay_coalesces_cumulative_acks(self):
        sim = Simulator()
        lan, transports, inboxes = make_pair(
            sim, LanConfig(ack_delay=0.050))
        for i in range(8):
            transports[0].send(1, b"m%d" % i)
        sim.run()
        assert len(inboxes[1]) == 8
        stats = transports[1].stats()
        # All 8 frames arrive within one delay window: one pure ACK.
        assert stats["acks_pure"] < 8
        assert stats["acks_coalesced"] > 0
        # Sender saw the cumulative ack: nothing left unacked.
        channel = transports[0]._send_channels[1]
        assert not channel.unacked

    def test_pending_ack_piggybacks_on_reverse_data(self):
        sim = Simulator()
        lan, transports, inboxes = make_pair(
            sim, LanConfig(ack_delay=0.100))
        transports[0].send(1, b"ping")
        sim.run(until=sim.now + 0.020)  # data arrived, ACK still owed
        transports[1].send(0, b"pong")  # reverse data absorbs the ACK
        sim.run()
        assert len(inboxes[1]) == 1 and len(inboxes[0]) == 1
        stats = transports[1].stats()
        assert stats["acks_piggybacked"] == 1
        assert stats["acks_pure"] == 0
        assert not transports[0]._send_channels[1].unacked

    def test_duplicate_frames_ack_immediately(self):
        sim = Simulator()
        lan, transports, inboxes = make_pair(
            sim, LanConfig(ack_delay=5.0, rto=0.2))
        # Lose the first transmission's ACK window by dropping frames:
        # simplest duplicate source is the sender's own retransmit.
        lan.config.loss_rate = 0.0
        transports[0].send(1, b"hello")
        sim.run(until=0.5)  # ACK delayed 5s; rto 0.2 forces a duplicate
        assert sim.trace.value("transport.duplicates") >= 1
        # The duplicate triggered an immediate (urgent) cumulative ACK.
        assert transports[1].acks_pure >= 1
        sim.run()
        assert not transports[0]._send_channels[1].unacked
        assert len(inboxes[1]) == 1

    def test_reliable_under_loss_with_delayed_acks(self):
        sim = Simulator(seed=5)
        lan, transports, inboxes = make_pair(
            sim, LanConfig(ack_delay=0.030, loss_rate=0.2))
        for i in range(40):
            transports[0].send(1, b"x%d" % i)
            transports[1].send(0, b"y%d" % i)
        sim.run()
        assert [d for _, d in inboxes[1]] == [b"x%d" % i for i in range(40)]
        assert [d for _, d in inboxes[0]] == [b"y%d" % i for i in range(40)]

    def test_shutdown_cancels_ack_timers(self):
        sim = Simulator()
        lan, transports, inboxes = make_pair(
            sim, LanConfig(ack_delay=1.0))
        transports[0].send(1, b"m")
        sim.run(until=sim.now + 0.020)
        transports[1].shutdown()
        # The peer keeps retransmitting into the void (the site-view
        # layer is what resets channels in the full system): bound the run.
        sim.run(until=5.0)
        assert transports[1].acks_pure == 0

    def test_epoch_bump_discards_stale_delayed_ack(self):
        """An ACK owed to a dead incarnation must not be replayed against
        the restarted peer's fresh send channel (it would 'acknowledge'
        frames the new incarnation never delivered)."""
        sim = Simulator()
        lan, transports, inboxes = make_pair(sim, LanConfig(ack_delay=5.0))
        for i in range(5):
            transports[0].send(1, b"m%d" % i)
        # Check before the sender's rto fires (a duplicate would flush
        # the owed ACK urgently): data arrives well inside 0.3 s.
        sim.run(until=0.3)
        assert transports[1]._ack_pending.get(0) == 4
        transports[0].shutdown()
        t0 = Transport(sim, lan, 0, epoch=1, cpu=Cpu(sim, "cpu0b"),
                       on_message=lambda src, data: None)
        for i in range(3):
            t0.send(1, b"n%d" % i)
        # New-incarnation frames arrive ~16 ms later; check the owed ACK
        # before any retransmit can flush it urgently.
        sim.run(until=0.45)
        # The stale value 4 was dropped at the epoch bump: what we owe
        # now reflects only the new incarnation's frames (seqs 0..2).
        assert transports[1]._ack_pending.get(0) == 2
        sim.run(until=10.0)
        assert not t0._send_channels[1].unacked
