"""Unit tests for channels/gates/locks and the CPU model."""

import pytest

from repro.sim import Channel, Cpu, Gate, Lock, Simulator, sleep, spawn


class TestChannel:
    def test_put_then_get(self):
        sim = Simulator()
        chan = Channel(sim)
        chan.put("a")

        def body():
            got = yield chan.get()
            return got

        task = spawn(sim, body())
        sim.run()
        assert task.value == "a"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        chan = Channel(sim)
        times = []

        def consumer():
            got = yield chan.get()
            times.append((sim.now, got))

        spawn(sim, consumer())
        sim.call_after(3.0, chan.put, "x")
        sim.run()
        assert times == [(3.0, "x")]

    def test_fifo_order_across_waiters(self):
        sim = Simulator()
        chan = Channel(sim)
        got = []

        def consumer(tag):
            item = yield chan.get()
            got.append((tag, item))

        spawn(sim, consumer("first"))
        spawn(sim, consumer("second"))
        sim.call_after(1.0, chan.put, 1)
        sim.call_after(2.0, chan.put, 2)
        sim.run()
        assert got == [("first", 1), ("second", 2)]

    def test_close_rejects_waiters(self):
        sim = Simulator()
        chan = Channel(sim)

        def consumer():
            try:
                yield chan.get()
            except EOFError:
                return "closed"

        task = spawn(sim, consumer())
        sim.call_after(1.0, chan.close)
        sim.run()
        assert task.value == "closed"

    def test_drain(self):
        sim = Simulator()
        chan = Channel(sim)
        chan.put(1)
        chan.put(2)
        assert chan.drain() == [1, 2]
        assert len(chan) == 0


class TestGate:
    def test_waiters_released_on_open(self):
        sim = Simulator()
        gate = Gate(sim)
        passed = []

        def body(tag):
            yield gate.wait()
            passed.append((tag, sim.now))

        spawn(sim, body("a"))
        spawn(sim, body("b"))
        sim.call_after(5.0, gate.open)
        sim.run()
        assert passed == [("a", 5.0), ("b", 5.0)]

    def test_open_gate_passes_immediately(self):
        sim = Simulator()
        gate = Gate(sim, open_=True)

        def body():
            yield gate.wait()
            return sim.now

        task = spawn(sim, body())
        sim.run()
        assert task.value == 0.0

    def test_reset_closes_again(self):
        sim = Simulator()
        gate = Gate(sim, open_=True)
        gate.reset()
        assert not gate.is_open


class TestLock:
    def test_mutual_exclusion_fifo(self):
        sim = Simulator()
        lock = Lock(sim)
        order = []

        def body(tag, hold):
            yield lock.acquire()
            order.append(("in", tag, sim.now))
            yield sleep(sim, hold)
            order.append(("out", tag, sim.now))
            lock.release()

        spawn(sim, body("a", 2.0))
        spawn(sim, body("b", 1.0))
        sim.run()
        assert order == [
            ("in", "a", 0.0),
            ("out", "a", 2.0),
            ("in", "b", 2.0),
            ("out", "b", 3.0),
        ]

    def test_release_without_waiters_unlocks(self):
        sim = Simulator()
        lock = Lock(sim)

        def body():
            yield lock.acquire()
            lock.release()
            yield lock.acquire()
            lock.release()
            return "ok"

        task = spawn(sim, body())
        sim.run()
        assert task.value == "ok"
        assert not lock.locked


class TestCpu:
    def test_work_is_serialized(self):
        sim = Simulator()
        cpu = Cpu(sim)
        done = []
        cpu.submit(1.0, done.append, "a")
        cpu.submit(2.0, done.append, "b")
        sim.run()
        assert done == ["a", "b"]
        assert sim.now == 3.0

    def test_idle_gap_not_counted_busy(self):
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.submit(1.0)
        sim.run()
        sim.call_after(9.0, cpu.submit, 1.0)
        sim.run()
        # 2 busy seconds out of 11 elapsed.
        assert cpu.busy_before(sim.now) == pytest.approx(2.0)

    def test_meter_measures_window_utilization(self):
        sim = Simulator()
        cpu = Cpu(sim)
        meter = cpu.meter()
        cpu.submit(2.0)
        sim.run(until=4.0)
        assert meter.utilization() == pytest.approx(0.5)

    def test_busy_before_midwork(self):
        sim = Simulator()
        cpu = Cpu(sim)
        cpu.submit(10.0)
        # At t=4, the CPU has been busy for 4 of the 10 scheduled seconds.
        sim.run(until=4.0)
        assert cpu.busy_before(4.0) == pytest.approx(4.0)

    def test_submit_resolves_with_result(self):
        sim = Simulator()
        cpu = Cpu(sim)

        def body():
            got = yield cpu.submit(1.5, lambda: "result")
            return got

        task = spawn(sim, body())
        sim.run()
        assert task.value == "result"
        assert sim.now == 1.5
