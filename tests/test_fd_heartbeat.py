"""Unit tests for the adaptive heartbeat failure detector."""

import pytest

from repro.fd import HeartbeatConfig, HeartbeatMonitor
from repro.sim import Simulator


class Harness:
    def __init__(self, sim, site_id=0, config=None):
        self.probes = []
        self.suspects = []
        self.monitor = HeartbeatMonitor(
            sim, site_id,
            send_probe=self.probes.append,
            on_suspect=self.suspects.append,
            config=config or HeartbeatConfig(),
        )


def test_probes_sent_to_all_peers_each_interval():
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers([1, 2])
    h.monitor.start()
    sim.run(until=1.9)
    # 4 ticks (t=0, .5, 1.0, 1.5) x 2 peers
    assert len(h.probes) == 8
    assert set(h.probes) == {1, 2}


def test_self_excluded_from_peers():
    sim = Simulator()
    h = Harness(sim, site_id=3)
    h.monitor.set_peers([3, 1])
    h.monitor.start()
    sim.run(until=0.1)
    assert set(h.probes) == {1}


def test_silent_peer_suspected_after_min_timeout():
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers([1])
    h.monitor.start()
    sim.run(until=5.0)
    assert h.suspects == [1]
    assert h.monitor.suspected == {1}


def test_heartbeats_prevent_suspicion():
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers([1])
    h.monitor.start()

    def feed():
        h.monitor.note_heartbeat(1)

    for t in range(1, 20):
        sim.call_at(t * 0.5, feed)
    sim.run(until=9.0)
    assert h.suspects == []


def test_suspicion_fires_once():
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers([1])
    h.monitor.start()
    sim.run(until=30.0)
    assert h.suspects == [1]


def test_readded_peer_forgiven():
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers([1])
    h.monitor.start()
    sim.run(until=5.0)
    assert h.monitor.suspected == {1}
    h.monitor.set_peers([2])     # view excludes site 1 ...
    h.monitor.set_peers([1, 2])  # ... then re-admits it after recovery
    assert h.monitor.suspected == set()


def test_jittery_peer_gets_longer_timeout():
    """§3.7 adaptivity: irregular arrivals stretch the timeout."""
    sim = Simulator()
    config = HeartbeatConfig(min_timeout=1.5)
    h = Harness(sim, config=config)
    h.monitor.set_peers([1])
    h.monitor.start()
    # Arrivals alternating fast/slow: mean ~1.25s, high deviation.
    t = 0.0
    for i in range(12):
        t += 0.5 if i % 2 == 0 else 2.0
        sim.call_at(t, h.monitor.note_heartbeat, 1)
    sim.run(until=t)
    stats = h.monitor._peers[1]
    assert stats.timeout(config) > config.min_timeout


def test_stop_cancels_ticks():
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers([1])
    h.monitor.start()
    sim.run(until=1.0)
    count = len(h.probes)
    h.monitor.stop()
    sim.run(until=10.0)
    assert len(h.probes) == count
    assert h.suspects == []


def test_removed_peer_not_probed():
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers([1, 2])
    h.monitor.start()
    sim.run(until=0.1)
    h.monitor.set_peers([2])
    h.probes.clear()
    sim.run(until=1.2)
    assert set(h.probes) == {2}


# -- staggered tick buckets (scale-out past 32 sites) ------------------------

def test_few_peers_single_bucket_legacy_behavior():
    """At or below tick_bucket_size the monitor is the original whole-scan
    tick: one bucket, probes for every peer each interval."""
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers(range(1, 33))  # exactly 32 peers
    assert h.monitor.n_buckets() == 1
    h.monitor.start()
    sim.run(until=0.4)  # one tick at t=0
    assert sorted(h.probes) == list(range(1, 33))


@pytest.mark.parametrize("n_peers,expected_buckets", [
    (33, 2), (64, 2), (65, 3), (256, 8),
])
def test_bucket_count_scales_ceil(n_peers, expected_buckets):
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers(range(1, n_peers + 1))
    assert h.monitor.n_buckets() == expected_buckets
    assert h.monitor.stats() == {
        "fd.tick_bucket_size": 32,
        "fd.buckets": expected_buckets,
    }


def test_bucket_size_zero_disables_staggering():
    sim = Simulator()
    h = Harness(sim, config=HeartbeatConfig(tick_bucket_size=0))
    h.monitor.set_peers(range(1, 101))
    assert h.monitor.n_buckets() == 1


def test_staggered_every_peer_probed_once_per_interval():
    """With 64 peers in 2 buckets, sub-ticks alternate buckets but each
    full interval still probes every peer exactly once."""
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers(range(1, 65))
    h.monitor.start()
    sim.run(until=0.49)  # sub-ticks at t=0 and t=0.25: one full interval
    assert sorted(h.probes) == list(range(1, 65))
    # Sub-ticks must not probe everyone at once (the burst is halved).
    first_subtick = h.probes[:32]
    assert len(set(p % 2 for p in first_subtick)) == 1


def test_staggered_silent_peer_still_suspected():
    sim = Simulator()
    h = Harness(sim)
    h.monitor.set_peers(range(1, 65))
    h.monitor.start()

    def feed_all_but_one():
        for peer in range(2, 65):
            h.monitor.note_heartbeat(peer)

    for t in range(1, 40):
        sim.call_at(t * 0.5, feed_all_but_one)
    sim.run(until=10.0)
    assert h.suspects == [1]
